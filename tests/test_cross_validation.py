"""Randomized cross-validation: every decision procedure against the
semantic oracle, and the procedures against each other.

This is the reproduction's strongest evidence: for each semiring with
an exact Table-1 characterization, the syntactic decision must never be
refuted semantically (soundness), and every refusal must be witnessed
by a concrete annotated instance (completeness — the witnesses live on
canonical instances, as the paper's proofs construct them).
"""

from __future__ import annotations

import random

import pytest

from repro.core import classify, decide_cq_containment, decide_ucq_containment
from repro.oracle import find_counterexample
from repro.queries.generators import random_cq, random_ucq
from repro.semirings import (B, BX, LIN, LIN_X_N2, N2X, N3X, NX, POSBOOL,
                             SORP, SSUR, TMINUS, TPLUS, TRIO, WHY)

CQ_SEMIRINGS = [B, POSBOOL, LIN, SORP, WHY, TRIO, SSUR, NX, BX, N2X, TPLUS,
                TMINUS]
UCQ_SEMIRINGS = [B, LIN, LIN_X_N2, SORP, WHY, SSUR, NX, BX, N2X, N3X, TPLUS]


def _cq_problems(seed: int, count: int):
    rng = random.Random(seed)
    return [
        (random_cq(rng, max_atoms=3, max_vars=3),
         random_cq(rng, max_atoms=3, max_vars=3))
        for _ in range(count)
    ]


def _ucq_problems(seed: int, count: int):
    rng = random.Random(seed)
    return [
        (random_ucq(rng, max_members=2, max_atoms=2, max_vars=2),
         random_ucq(rng, max_members=2, max_atoms=2, max_vars=2))
        for _ in range(count)
    ]


@pytest.mark.parametrize("semiring", CQ_SEMIRINGS, ids=lambda s: s.name)
def test_cq_decisions_match_oracle(semiring):
    for q1, q2 in _cq_problems(1234, 25):
        verdict = decide_cq_containment(q1, q2, semiring)
        assert verdict.decided, (semiring.name, q1, q2)
        witness = find_counterexample(q1, q2, semiring,
                                      rng=random.Random(5), budget=700,
                                      random_rounds=6)
        if verdict.result:
            assert witness is None, (semiring.name, q1, q2, witness)
        else:
            assert witness is not None, (semiring.name, q1, q2)


@pytest.mark.parametrize("semiring", UCQ_SEMIRINGS, ids=lambda s: s.name)
def test_ucq_decisions_match_oracle(semiring):
    for q1, q2 in _ucq_problems(4321, 15):
        verdict = decide_ucq_containment(q1, q2, semiring)
        assert verdict.decided, (semiring.name, q1, q2)
        witness = find_counterexample(q1, q2, semiring,
                                      rng=random.Random(5), budget=600,
                                      random_rounds=6)
        if verdict.result:
            assert witness is None, (semiring.name, q1, q2, witness)
        else:
            assert witness is not None, (semiring.name, q1, q2)


def test_chom_members_agree_with_each_other():
    """All Chom semirings share one containment relation (Thm. 3.3)."""
    from repro.semirings import ACCESS, EVENTS, FUZZY
    for q1, q2 in _cq_problems(77, 20):
        answers = {
            decide_cq_containment(q1, q2, K).result
            for K in (B, POSBOOL, EVENTS, FUZZY, ACCESS)
        }
        assert len(answers) == 1, (q1, q2, answers)


def test_small_model_agrees_with_hom_procedures_on_chom():
    """B has both a hom characterization and a decidable poly order: the
    two procedures must agree."""
    from repro.core import small_model_contained
    for q1, q2 in _cq_problems(55, 15):
        by_hom = decide_cq_containment(q1, q2, B).result
        by_model = small_model_contained(q1, q2, B)
        assert by_hom == by_model, (q1, q2)


def test_containment_transitive_where_decided():
    """(C1): ⊆K is a preorder — check transitivity of positive verdicts."""
    rng = random.Random(66)
    queries = [random_cq(rng, max_atoms=2, max_vars=2) for _ in range(6)]
    for K in (B, LIN, WHY, NX, TPLUS):
        for qa in queries:
            for qb in queries:
                if not decide_cq_containment(qa, qb, K).result:
                    continue
                for qc in queries:
                    if decide_cq_containment(qb, qc, K).result:
                        assert decide_cq_containment(qa, qc, K).result, (
                            K.name, qa, qb, qc)


def test_union_monotonicity_c4():
    """(C4): Q1 ⊆K Q2 implies Q1 ∪ Q3 ⊆K Q2 ∪ Q3."""
    rng = random.Random(88)
    for K in (B, LIN, NX, WHY):
        for _ in range(10):
            q1 = random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
            q2 = random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
            q3 = random_ucq(rng, max_members=1, max_atoms=2, max_vars=2)
            if decide_ucq_containment(q1, q2, K).result:
                extended = decide_ucq_containment(
                    q1.union(q3), q2.union(q3), K)
                assert extended.result, (K.name, q1, q2, q3)


def test_cq_and_singleton_ucq_agree():
    for K in (B, LIN, SORP, WHY, NX, TPLUS):
        for q1, q2 in _cq_problems(99, 12):
            from repro.queries import UCQ
            cq_verdict = decide_cq_containment(q1, q2, K)
            ucq_verdict = decide_ucq_containment(UCQ((q1,)), UCQ((q2,)), K)
            assert cq_verdict.result == ucq_verdict.result, (K.name, q1, q2)
