"""Documentation integrity: no dead links, no phantom modules.

Fails when README.md or any file under ``docs/`` links to a repository
path that does not exist, or name-drops a ``repro`` module or a
``src/``/``benchmarks/``/``examples/``/``tests/`` file that is not in
the tree — the cheap guard that keeps the architecture docs honest as
the codebase moves.
"""

from __future__ import annotations

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

DOCUMENTS = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

#: Markdown inline links: [text](target)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Dotted module references like ``repro.api.engine`` (in backticks or
#: prose); attribute tails are tolerated by prefix-checking.
_MODULE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

#: Repository file paths named in prose/code blocks.
_PATH = re.compile(
    r"\b(?:src|docs|benchmarks|examples|tests)/[\w./-]+\.(?:py|md)\b")


def _python_modules() -> set[str]:
    modules = set()
    for path in (ROOT / "src").rglob("*.py"):
        relative = path.relative_to(ROOT / "src")
        parts = list(relative.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules.add(".".join(parts))
    return modules


MODULES = _python_modules()


def test_documents_exist():
    assert (ROOT / "docs" / "ARCHITECTURE.md").exists(), \
        "docs/ARCHITECTURE.md is part of the documented contract"
    for document in DOCUMENTS:
        assert document.exists(), document


def test_markdown_links_resolve():
    dead = []
    for document in DOCUMENTS:
        text = document.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = (document.parent / target.split("#", 1)[0]).resolve()
            if not path.exists():
                dead.append(f"{document.relative_to(ROOT)} -> {target}")
    assert not dead, "dead markdown links:\n" + "\n".join(dead)


def test_referenced_paths_exist():
    missing = []
    for document in DOCUMENTS:
        text = document.read_text(encoding="utf-8")
        for target in set(_PATH.findall(text)):
            if not (ROOT / target).exists():
                missing.append(f"{document.relative_to(ROOT)} -> {target}")
    assert not missing, "nonexistent paths referenced:\n" + "\n".join(missing)


def test_referenced_modules_exist():
    phantoms = []
    for document in DOCUMENTS:
        text = document.read_text(encoding="utf-8")
        for reference in set(_MODULE.findall(text)):
            parts = reference.split(".")
            # Accept any prefix that is a real module: the tail may be
            # a class/function/attribute (repro.api.ContainmentEngine).
            if not any(".".join(parts[:length]) in MODULES
                       for length in range(len(parts), 0, -1)):
                phantoms.append(
                    f"{document.relative_to(ROOT)} -> {reference}")
    assert not phantoms, \
        "nonexistent modules referenced:\n" + "\n".join(phantoms)
