"""The ``repro eval`` subcommand and the annotated CSV round-trip."""

from __future__ import annotations

import json
import math
import pathlib

import pytest

from repro.cli import main
from repro.data.instance import (Instance, format_annotation,
                                 parse_annotation)
from repro.semirings import B, N, TPLUS, VITERBI


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


SAMPLE = str(pathlib.Path(__file__).resolve().parent.parent
             / "examples" / "data" / "route_costs.csv")


# -- CSV round-trip -----------------------------------------------------


def test_from_csv_reads_sample(tmp_path):
    instance = Instance.from_csv(SAMPLE, TPLUS)
    assert instance.arity("Road") == 2
    assert instance.arity("Toll") == 1
    assert instance.annotation("Road", ("vienna", "linz")) == 2


def test_csv_round_trip(tmp_path):
    instance = Instance(TPLUS, {
        "R": {("a", "b"): 3, (1, 2): 0},
        "S": {("c",): 5},
    })
    path = tmp_path / "out.csv"
    count = instance.to_csv(path)
    assert count == 3
    back = Instance.from_csv(path, TPLUS)
    assert back.relations() == instance.relations()
    for name in instance.relations():
        assert dict(back.support(name)) == dict(instance.support(name))


def test_from_csv_accumulates_duplicate_rows(tmp_path):
    path = tmp_path / "dup.csv"
    path.write_text("R,a,b,2\nR,a,b,3\n")
    # Duplicate facts combine with ⊕ — min for T+, + for N.
    assert Instance.from_csv(path, TPLUS).annotation("R", ("a", "b")) == 2
    assert Instance.from_csv(path, N).annotation("R", ("a", "b")) == 5


def test_from_csv_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "sparse.csv"
    path.write_text("# header\n\nR,a,1\n   \n# tail\n")
    instance = Instance.from_csv(path, N)
    assert instance.fact_count() == 1


def test_from_csv_rejects_garbage(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("R,a\n")  # relation + annotation but no arity-0 rows
    with pytest.raises(ValueError):
        Instance.from_csv(path, N)
    path.write_text("R,a,not^a!value\n")
    with pytest.raises(ValueError):
        Instance.from_csv(path, N)


def test_annotation_parsing_and_formatting():
    assert parse_annotation(N, "7") == 7
    assert parse_annotation(TPLUS, "inf") == math.inf
    assert parse_annotation(TPLUS, "-3") == -3
    assert parse_annotation(B, "true") is True
    assert parse_annotation(B, "false") is False
    from fractions import Fraction
    assert parse_annotation(VITERBI, "1/2") == Fraction(1, 2)
    assert format_annotation(N, 7) == "7"
    assert format_annotation(TPLUS, math.inf) == "inf"
    assert format_annotation(B, True) == "true"
    assert format_annotation(VITERBI, Fraction(1, 2)) == "1/2"


# -- the eval subcommand ------------------------------------------------


def test_eval_ascii_output(capsys):
    code, out, _ = run_cli(
        capsys, "eval", "--semiring", "T+",
        "--query", "Q(x, y) :- Road(x, z), Road(z, y)",
        "--instance", SAMPLE)
    assert code == 0
    assert "answer(s) over T+" in out
    # vienna → linz → salzburg costs 2 + 1 = 3 (min-plus).
    assert "('vienna', 'salzburg') ↦ 3" in out


def test_eval_json_output(capsys):
    code, out, _ = run_cli(
        capsys, "eval", "--semiring", "T+", "--json",
        "--query", "Q(x, y) :- Road(x, z), Road(z, y)",
        "--instance", SAMPLE)
    assert code == 0
    payload = json.loads(out)
    assert payload["semiring"] == "T+"
    assert payload["arity"] == 2
    assert payload["facts"] == 12
    answers = {tuple(row["tuple"]): row["annotation"]
               for row in payload["answers"]}
    assert answers[("vienna", "salzburg")] == "3"


def test_eval_union_of_queries(capsys):
    code, out, _ = run_cli(
        capsys, "eval", "--semiring", "T+", "--json",
        "--query", "Q(x) :- Toll(x)",
        "--query", "Q(x) :- Road(x, y), Toll(y)",
        "--instance", SAMPLE)
    assert code == 0
    payload = json.loads(out)
    assert payload["arity"] == 1
    answers = {tuple(row["tuple"]): row["annotation"]
               for row in payload["answers"]}
    # vienna only matches the second member: cheapest tolled hop is
    # graz (road 2 + toll 0).
    assert answers[("vienna",)] == "2"
    # linz matches both members: its own toll 1 beats any tolled hop.
    assert answers[("linz",)] == "1"


def test_eval_no_answers(capsys):
    code, out, _ = run_cli(
        capsys, "eval", "--semiring", "T+",
        "--query", "Q(x) :- Nowhere(x)",
        "--instance", SAMPLE)
    assert code == 0
    assert "no answers" in out


def test_eval_missing_file(capsys):
    # argparse error (no --instance) is converted to an exit code …
    code, _, _ = run_cli(capsys, "eval", "--semiring", "T+",
                         "--query", "Q(x) :- R(x)")
    assert code != 0
    # … and a nonexistent file is an OSError turned into exit code 1.
    code, _, err = run_cli(
        capsys, "eval", "--semiring", "T+",
        "--query", "Q(x) :- R(x)", "--instance", "does/not/exist.csv")
    assert code != 0


def test_eval_unknown_semiring(capsys):
    code, _, err = run_cli(
        capsys, "eval", "--semiring", "K9",
        "--query", "Q(x) :- R(x)", "--instance", SAMPLE)
    assert code != 0
