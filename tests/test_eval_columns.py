"""Unit tests for the columnar storage and kernel layers.

The evaluator's end-to-end agreement is pinned in
``tests/test_eval_engine.py``; here the building blocks are checked in
isolation — interning semantics, dtype selection and demotion, exact
saturating/tropical kernels, and the join primitives.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data.instance import Instance
from repro.eval.columns import ColumnarInstance, ValueInterner
from repro.eval.join import join_indices, pack_pairs, pack_rows
from repro.eval.kernels import GenericObjectOps, ops_for
from repro.semirings import (B, N, N2_SATURATING, N3_SATURATING, TMINUS,
                             TPLUS, VITERBI, WHY)


# -- interning ----------------------------------------------------------


def test_interner_round_trip():
    interner = ValueInterner()
    values = ["a", 7, ("x", 1), "a", 7]
    idents = [interner.intern(value) for value in values]
    assert idents == [0, 1, 2, 0, 1]
    assert [interner.value(ident) for ident in idents[:3]] == \
        ["a", 7, ("x", 1)]
    assert interner.lookup("never") is None
    assert len(interner) == 3


def test_interner_conflates_like_dict_keys():
    """``1``/``True`` must merge, because Instance's dict rows do."""
    interner = ValueInterner()
    assert interner.intern(1) == interner.intern(True)
    assert interner.intern(0) == interner.intern(False)


# -- dtype selection and demotion ---------------------------------------


def test_numeric_semirings_get_dtype_kernels():
    assert ops_for(N).dtype == np.int64
    assert ops_for(N2_SATURATING).dtype == np.int64
    assert ops_for(TPLUS).dtype == np.float64
    assert ops_for(TMINUS).dtype == np.float64
    assert ops_for(B).dtype == np.bool_


def test_symbolic_semirings_fall_back_to_objects():
    assert isinstance(ops_for(WHY), GenericObjectOps)
    # Viterbi weights are Fractions: float64 would break byte-identity.
    assert isinstance(ops_for(VITERBI), GenericObjectOps)


def test_overflowing_counts_demote_to_generic():
    huge = 2 ** 80
    instance = Instance(N, {"R": {(1,): huge, (2,): 3}})
    columnar = ColumnarInstance.from_instance(instance)
    assert isinstance(columnar.ops, GenericObjectOps)
    assert sorted(columnar.ops.decode(
        columnar.relations["R"].annotations)) == [3, huge]


def test_columnar_instance_encodes_annotations_exactly():
    # math.inf is T+'s ⊕-zero: Instance drops that fact at construction,
    # so only the finite costs reach the column store.
    instance = Instance(TPLUS, {"R": {(1,): 3, (2,): math.inf, (3,): 0}})
    columnar = ColumnarInstance.from_instance(instance)
    decoded = columnar.ops.decode(columnar.relations["R"].annotations)
    assert sorted(decoded) == [0, 3]
    assert all(type(value) is int for value in decoded)


# -- exact kernels ------------------------------------------------------


def test_natural_kernels_guard_overflow():
    ops = ops_for(N)
    near = np.asarray([2 ** 62], dtype=np.int64)
    with pytest.raises(OverflowError):
        ops.add(near, near)
    with pytest.raises(OverflowError):
        ops.mul(near, near)
    with pytest.raises(OverflowError):
        ops.encode([2 ** 70])


def test_saturating_kernels_clip_exactly():
    ops = ops_for(N3_SATURATING)
    a = ops.encode([0, 1, 2, 3])
    assert ops.add(a, a).tolist() == [0, 2, 3, 3]
    assert ops.mul(a, a).tolist() == [0, 1, 3, 3]
    # Segment fold: clip-once-of-true-sum equals the iterated clip.
    values = ops.encode([2, 2, 2, 1])
    groups = np.asarray([0, 0, 1, 1], dtype=np.int64)
    folded = ops.segment_add(values, groups, 2).tolist()
    assert folded == [3, 3]
    iterated = N3_SATURATING.add(N3_SATURATING.add(2, 2), 2)
    assert N3_SATURATING.add(2, 2) == folded[0] and iterated == 3


def test_tropical_kernels_restore_int_types():
    ops = ops_for(TPLUS)
    encoded = ops.encode([3, math.inf, 0])
    decoded = ops.decode(encoded)
    assert decoded == [3, math.inf, 0]
    assert type(decoded[0]) is int and type(decoded[1]) is float
    groups = np.asarray([0, 0, 1], dtype=np.int64)
    assert ops.segment_add(encoded, groups, 2).tolist() == [3.0, 0.0]


def test_boolean_kernels():
    ops = ops_for(B)
    a = ops.encode([True, False, True])
    b = ops.encode([False, False, True])
    assert ops.add(a, b).tolist() == [True, False, True]
    assert ops.mul(a, b).tolist() == [False, False, True]
    groups = np.asarray([0, 0, 1], dtype=np.int64)
    assert ops.segment_add(b, groups, 2).tolist() == [False, True]
    assert all(type(value) is bool for value in ops.decode(a))


def test_generic_segment_add_replays_reference_accumulation():
    import random

    rng = random.Random(0)
    ops = GenericObjectOps(WHY)
    values = [WHY.sample(rng) for _ in range(3)]
    encoded = ops.encode(values)
    groups = np.asarray([0, 1, 0], dtype=np.int64)
    folded = ops.decode(ops.segment_add(encoded, groups, 2))
    assert folded[0] == WHY.add(values[0], values[2])
    assert folded[1] == values[1]


# -- join primitives ----------------------------------------------------


def test_pack_rows_keys_equal_iff_rows_equal():
    columns = [np.asarray([1, 1, 2, 1], dtype=np.int64),
               np.asarray([5, 5, 5, 6], dtype=np.int64)]
    key = pack_rows(columns, 4)
    assert key[0] == key[1]
    assert len({int(key[0]), int(key[2]), int(key[3])}) == 3


def test_pack_pairs_is_consistent_across_sides():
    left = [np.asarray([10, 20, 30], dtype=np.int64)]
    right = [np.asarray([30, 10, 40], dtype=np.int64)]
    left_key, right_key = pack_pairs(left, right)
    assert left_key[0] == right_key[1]
    assert left_key[2] == right_key[0]
    assert right_key[2] not in set(left_key.tolist())


def test_join_indices_match_nested_loop():
    left = np.asarray([1, 2, 2, 3], dtype=np.int64)
    right = np.asarray([2, 3, 4, 2], dtype=np.int64)
    li, ri = join_indices(left, right)
    pairs = sorted(zip(li.tolist(), ri.tolist()))
    expected = sorted(
        (i, j)
        for i, lv in enumerate(left.tolist())
        for j, rv in enumerate(right.tolist())
        if lv == rv
    )
    assert pairs == expected


def test_join_indices_empty_sides():
    empty = np.zeros(0, dtype=np.int64)
    some = np.asarray([1, 2], dtype=np.int64)
    for left, right in ((empty, some), (some, empty), (empty, empty)):
        li, ri = join_indices(left, right)
        assert len(li) == 0 and len(ri) == 0
