"""End-to-end agreement of the columnar evaluator with the reference.

The central property (an ISSUE acceptance criterion): for **every**
registered semiring — numeric, tropical, and symbolic/object-dtype
alike — ``repro.eval.evaluate`` must return *byte-identical* answer
maps to the tuple-at-a-time ``repro.queries.evaluation.evaluate_all``
on randomized small instances, including the join edge cases (empty
relations, repeated variables within one atom, constants,
inequalities, cross products).
"""

from __future__ import annotations

import random

import pytest

from repro.api import ContainmentEngine
from repro.data.instance import Instance
from repro.eval import ColumnarInstance, build_plan, evaluate
from repro.oracle import random_annotated_instance
from repro.queries.atoms import Atom, Var
from repro.queries.ccq import CQWithInequalities
from repro.queries.cq import CQ
from repro.queries.evaluation import evaluate_all
from repro.queries.parser import parse_cq
from repro.queries.ucq import UCQ, as_ucq
from repro.semirings import ALL_SEMIRINGS, N, TPLUS

X, Y, Z = Var("x"), Var("y"), Var("z")

#: A UCQ exercising joins, a self-join on one atom, and a unary member.
MIXED_UCQ = UCQ([
    CQ([X, Y], [Atom("R", (X, Z)), Atom("R", (Z, Y))]),
    CQ([X, X], [Atom("R", (X, X))]),
    CQ([X, Y], [Atom("R", (X, Y)), Atom("T", (Y,))]),
])

#: Inequalities + a constant filter + a repeated-variable atom.
EDGE_CCQ = CQWithInequalities(
    [X, Y],
    [Atom("R", (X, Y)), Atom("S", (X, 7)), Atom("R", (Y, Y))],
    [(X, Y)],
)


def _agree(query, instance, semiring):
    """Assert value- and *type*-identical answers on one instance."""
    union = as_ucq(query)
    reference = evaluate_all(union, instance)
    columnar = evaluate(union, instance, semiring).to_dict()
    assert columnar == reference
    for head, value in reference.items():
        assert type(columnar[head]) is type(value), (head, value)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS,
                         ids=[s.name for s in ALL_SEMIRINGS])
def test_columnar_matches_reference_every_semiring(semiring):
    """The headline property: byte-identity across all 23 semirings."""
    rng = random.Random(42)
    for trial in range(8):
        instance = random_annotated_instance(
            {"R": 2, "T": 1}, semiring, rng,
            domain_size=3, facts_per_relation=8)
        _agree(MIXED_UCQ, instance, semiring)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS,
                         ids=[s.name for s in ALL_SEMIRINGS])
def test_columnar_matches_reference_edge_cases(semiring):
    """Constants, intra-atom repeats and inequalities, every semiring."""
    rng = random.Random(7)
    for trial in range(5):
        instance = random_annotated_instance(
            {"R": 2, "S": 2}, semiring, rng,
            domain_size=4, facts_per_relation=10)
        # Make the constant filter selective but satisfiable.
        support = dict(instance.support("S"))
        if support:
            row = next(iter(support))
            support[(row[0], 7)] = support[row]
        tables = {name: dict(instance.support(name))
                  for name in instance.relations()}
        tables["S"] = support
        instance = Instance(semiring, tables)
        _agree(EDGE_CCQ, instance, semiring)


def test_empty_and_missing_relations():
    query = parse_cq("Q(x, y) :- R(x, z), R(z, y)")
    empty = Instance(N, {"R": {}})
    assert evaluate(query, empty, N).to_dict() == {}
    missing = Instance(N, {"Other": {(1,): 2}})
    assert evaluate(query, missing, N).to_dict() == {}
    assert evaluate_all(query, missing) == {}


def test_cross_product_member():
    query = UCQ([CQ([X, Y], [Atom("R", (X,)), Atom("S", (Y,))])])
    instance = Instance(N, {"R": {(1,): 2, (2,): 3},
                            "S": {(5,): 4}})
    expected = evaluate_all(query, instance)
    assert expected == {(1, 5): 8, (2, 5): 12}
    assert evaluate(query, instance).to_dict() == expected


def test_boolean_head_query():
    """A 0-ary head folds the whole support into one annotation."""
    query = UCQ([CQ([], [Atom("R", (X, Y))])])
    instance = Instance(N, {"R": {(1, 2): 3, (2, 2): 4}})
    assert evaluate_all(query, instance) == {(): 7}
    assert evaluate(query, instance).to_dict() == {(): 7}


def test_prebuilt_columnar_instance_reuse():
    instance = Instance(TPLUS, {"R": {(1, 2): 3, (2, 3): 5}})
    columnar = ColumnarInstance.from_instance(instance)
    query = parse_cq("Q(x, y) :- R(x, z), R(z, y)")
    assert evaluate(query, columnar).to_dict() == {(1, 3): 8}
    with pytest.raises(ValueError):
        evaluate(query, columnar, N)


def test_answer_table_views():
    instance = Instance(N, {"R": {(1, 2): 3}})
    table = evaluate(parse_cq("Q(x, y) :- R(x, y)"), instance)
    assert len(table) == 1
    assert list(table) == [((1, 2), 3)]
    assert "AnswerTable" in repr(table)


def test_plan_rejects_unsafe_queries():
    with pytest.raises(ValueError):
        build_plan(CQ([X, Y], [Atom("R", (X,))]))  # y unbound in head
    with pytest.raises(ValueError):
        build_plan(CQWithInequalities([X], [Atom("R", (X,))], [(X, Y)]))


def test_engine_evaluate_and_plan_cache_stats():
    engine = ContainmentEngine()
    instance = Instance(TPLUS, {"R": {(1, 2): 3, (2, 3): 5}})
    text = "Q(x, y) :- R(x, z), R(z, y)"
    first = engine.evaluate(text, instance)
    second = engine.evaluate(text, instance, "T+")
    assert first.to_dict() == second.to_dict() == {(1, 3): 8}
    # Convention: ``calls`` counts actual plan builds, ``hits`` recalls.
    layers = engine.cache_stats()["layers"]["eval_plans"]
    assert layers["calls"] == 1
    assert layers["hits"] == 1
    assert layers["entries"] == 1
    assert layers["hit_ratio"] == 0.5
    assert engine.stats.evaluations == 2


def test_eval_plans_snapshot_round_trip(tmp_path):
    from repro.service.snapshot import load_snapshot, save_snapshot

    warm = ContainmentEngine()
    instance = Instance(N, {"R": {(1, 2): 3}})
    warm.evaluate("Q(x, y) :- R(x, y)", instance)
    path = tmp_path / "warm.snapshot"
    sizes = save_snapshot(warm, path)
    assert sizes["eval_plans"] == 1

    cold = ContainmentEngine()
    restored = load_snapshot(cold, path)
    assert restored["eval_plans"] == 1
    cold.evaluate("Q(x, y) :- R(x, y)", instance)
    layers = cold.cache_stats()["layers"]["eval_plans"]
    assert layers["hits"] == 1 and layers["calls"] == 0
