"""The showcase datasets and the runnable example scripts."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.data import movie_provenance_db, personnel_db, travel_costs_db
from repro.queries import evaluate, parse_cq
from repro.semirings import ACCESS, NX, TPLUS

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_movie_db_provenance():
    db = movie_provenance_db()
    assert db.semiring is NX
    q = parse_cq("Q(d) :- Directed(d, f), ActsIn(a, f)")
    polynomial = evaluate(q, db, ("kurosawa",))
    # ran: d1·a1, ikiru: d2·(a2 + a4): three monomials total
    assert polynomial.term_count() == 3


def test_travel_db_costs():
    db = travel_costs_db()
    q = parse_cq("Q() :- Flight('edinburgh', x), Flight(x, 'scottsdale')")
    assert evaluate(q, db, ()) == 60 + 610  # via london beats via paris


def test_personnel_db_clearances():
    db = personnel_db()
    q = parse_cq("Q(n) :- Employee(n, d), Project(d, p)")
    assert evaluate(q, db, ("alan",)) == ACCESS.level("top-secret")
    assert evaluate(q, db, ("ada",)) == ACCESS.level("public")


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "provenance_optimization.py",
    "tropical_cost_planning.py",
    "bag_semantics_audit.py",
    "annotated_rdf_access.py",
    "algebra_rewriter.py",
    "service_warm_start.py",
])
def test_example_scripts_run(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_example_scripts_tell_the_story():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert "undecided" in result.stdout       # bag semantics stays honest
    assert "small-model" in result.stdout     # T+ uses Thm. 4.17
    assert "bijective" in result.stdout       # N[X] uses Thm. 4.10
