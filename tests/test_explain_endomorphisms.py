"""Certificate checking, explanations, and the endomorphism lemma."""

from __future__ import annotations

import random

import pytest

from repro.core.explain import (Explanation, check_homomorphism_certificate,
                                explain)
from repro.homomorphisms import HomKind, find_homomorphism
from repro.homomorphisms.isomorphism import endomorphisms, is_automorphism
from repro.queries import Var, complete_description, parse_cq, parse_ucq
from repro.queries.generators import random_cq
from repro.semirings import B, N, NX, SORP, WHY


# --- certificate checking -------------------------------------------------

def test_valid_certificate_accepted():
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")
    mapping = find_homomorphism(q2, q1, HomKind.PLAIN)
    assert check_homomorphism_certificate(q2, q1, mapping, HomKind.PLAIN)


def test_wrong_mapping_rejected():
    q1 = parse_cq("Q() :- R(u, v)")
    q2 = parse_cq("Q() :- R(x, y)")
    bad = {Var("x"): Var("v"), Var("y"): Var("u")}   # reversed
    assert not check_homomorphism_certificate(q2, q1, bad)


def test_partial_mapping_rejected():
    q1 = parse_cq("Q() :- R(u, v)")
    q2 = parse_cq("Q() :- R(x, y)")
    assert not check_homomorphism_certificate(q2, q1, {Var("x"): Var("u")})


def test_head_violation_rejected():
    q1 = parse_cq("Q(u) :- R(u, v)")
    q2 = parse_cq("Q(x) :- R(x, y)")
    bad = {Var("x"): Var("v"), Var("y"): Var("u")}
    assert not check_homomorphism_certificate(q2, q1, bad)


def test_kind_conditions_checked():
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(x, y), R(x, y)")
    mapping = find_homomorphism(q2, q1, HomKind.PLAIN)
    assert check_homomorphism_certificate(q2, q1, mapping, HomKind.PLAIN)
    assert not check_homomorphism_certificate(q2, q1, mapping,
                                              HomKind.INJECTIVE)
    assert not check_homomorphism_certificate(q2, q1, mapping,
                                              HomKind.SURJECTIVE)


@pytest.mark.parametrize("kind", list(HomKind), ids=lambda kind: kind.value)
def test_search_results_always_check(kind):
    rng = random.Random(13)
    for _ in range(15):
        q1 = random_cq(rng, max_atoms=3, max_vars=3)
        q2 = random_cq(rng, max_atoms=3, max_vars=3)
        mapping = find_homomorphism(q2, q1, kind)
        if mapping is not None:
            assert check_homomorphism_certificate(q2, q1, mapping, kind)


# --- explanations -----------------------------------------------------------

def test_explain_positive_with_certificate():
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")
    explanation = explain(q1, q2, B)
    assert explanation.verdict.result is True
    assert explanation.certificate_valid is True
    assert "certificate checked" in explanation.summary()


def test_explain_negative_with_witness():
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")
    explanation = explain(q1, q2, NX)
    assert explanation.verdict.result is False
    assert explanation.witness is not None
    assert "witness found" in explanation.summary()


def test_explain_undecided():
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")
    explanation = explain(q1, q2, N)
    assert explanation.verdict.result is None
    assert "undecided" in explanation.summary()


def test_explain_handles_ucq():
    u1 = parse_ucq(["Q() :- R(u, u)"])
    u2 = parse_ucq(["Q() :- R(u, v)", "Q() :- R(u, u)"])
    explanation = explain(u1, u2, SORP)
    assert explanation.verdict.result is True


# --- the endomorphism lemma (Sec. 5.2) ---------------------------------------

def test_ccq_endomorphisms_are_automorphisms():
    """All endomorphisms of complete CCQs are automorphisms."""
    rng = random.Random(99)
    checked = 0
    for _ in range(20):
        query = random_cq(rng, max_atoms=3, max_vars=3)
        for ccq in complete_description(query):
            for mapping in endomorphisms(ccq):
                assert is_automorphism(ccq, mapping), (ccq, mapping)
                checked += 1
    assert checked > 20  # the lemma was actually exercised


def test_plain_cq_endomorphisms_can_collapse():
    """Without inequalities a query CAN fold onto itself properly —
    the contrast that makes complete descriptions useful."""
    query = parse_cq("Q() :- R(u, v), R(u, w)")
    collapsing = [
        mapping for mapping in endomorphisms(query)
        if not is_automorphism(query, mapping)
    ]
    assert collapsing  # e.g. w ↦ v


def test_is_automorphism_checks_inequalities():
    ccq = parse_cq("Q() :- R(u, v), R(v, u), u != v")
    swap = {Var("u"): Var("v"), Var("v"): Var("u")}
    assert is_automorphism(ccq, swap)
    identity = {Var("u"): Var("u"), Var("v"): Var("v")}
    assert is_automorphism(ccq, identity)
