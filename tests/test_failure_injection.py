"""Failure injection: broken semirings and killed worker processes.

Two trust chains are defended here.  The first is the library's: the
dispatcher believes the declared `SemiringProperties`, so the auditor
has to be able to falsify wrong declarations.  The second is the
service's: `SupervisedWorkerPool` promises byte-identical results even
when workers are SIGKILLed mid-stream, so these tests kill workers and
diff the survivors' output against a sequential engine.
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest

from repro.api import ContainmentEngine, ContainmentRequest
from repro.semirings import (Semiring, SemiringProperties,
                             audit_declared_axioms, audit_positivity,
                             audit_semiring_laws)
from repro.service import DecisionError, SupervisedWorkerPool


class BrokenDistributivity(Semiring):
    """max/plus hybrid that violates distributivity."""

    name = "broken-dist"
    properties = SemiringProperties(offset=1, add_idempotent=True)

    zero = property(lambda self: 0)
    one = property(lambda self: 1)

    def add(self, a, b):
        return max(a, b)

    def mul(self, a, b):
        return a + b  # identity is 0, not 1 → law violations

    def leq(self, a, b):
        return a <= b

    def sample(self, rng):
        return rng.randint(0, 5)


class WrongOrder(Semiring):
    """Boolean algebra with a reversed (non-positive) order."""

    name = "wrong-order"
    properties = SemiringProperties(
        mul_idempotent=True, one_annihilating=True, add_idempotent=True,
        mul_semi_idempotent=True, offset=1)

    zero = property(lambda self: False)
    one = property(lambda self: True)

    def add(self, a, b):
        return a or b

    def mul(self, a, b):
        return a and b

    def leq(self, a, b):
        return (not b) or a  # reversed: 0 is now the top

    def sample(self, rng):
        return rng.random() < 0.5


class OverclaimedIdempotence(Semiring):
    """Bag semantics declaring ⊗-idempotence it does not have."""

    name = "overclaimed"
    properties = SemiringProperties(
        mul_idempotent=True, mul_semi_idempotent=True, offset=2)

    zero = property(lambda self: 0)
    one = property(lambda self: 1)

    def add(self, a, b):
        return min(a + b, 2)

    def mul(self, a, b):
        return min(a * b, 3)  # inconsistent cap: 2·2 = 3 ≠ 2

    def leq(self, a, b):
        return a <= b

    def sample(self, rng):
        return rng.randint(0, 2)


class UnderclaimedAnnihilation(Semiring):
    """A lattice hiding its 1-annihilation (declared-False must be
    falsified by finding NO violation)."""

    name = "underclaimed"
    properties = SemiringProperties(
        mul_idempotent=True, one_annihilating=False, add_idempotent=True,
        mul_semi_idempotent=True, offset=1)

    zero = property(lambda self: 0)
    one = property(lambda self: 3)

    def add(self, a, b):
        return max(a, b)

    def mul(self, a, b):
        return min(a, b)

    def leq(self, a, b):
        return a <= b

    def sample(self, rng):
        return rng.randint(0, 3)


class WrongOffset(Semiring):
    """Saturating at 3 but declaring offset 2."""

    name = "wrong-offset"
    properties = SemiringProperties(mul_semi_idempotent=True, offset=2)

    zero = property(lambda self: 0)
    one = property(lambda self: 1)

    def add(self, a, b):
        return min(a + b, 3)

    def mul(self, a, b):
        return min(a * b, 3)

    def leq(self, a, b):
        return a <= b

    def sample(self, rng):
        return rng.randint(0, 3)


def test_laws_audit_catches_broken_distributivity():
    report = audit_semiring_laws(BrokenDistributivity(), random.Random(1))
    assert not report.ok


def test_positivity_audit_catches_reversed_order():
    report = audit_positivity(WrongOrder(), random.Random(2))
    assert not report.ok


def test_axiom_audit_catches_overclaimed_idempotence():
    report = audit_declared_axioms(OverclaimedIdempotence(),
                                   random.Random(3))
    assert any("mul_idempotent" in failure for failure in report.failures)


def test_axiom_audit_catches_underclaimed_annihilation():
    report = audit_declared_axioms(UnderclaimedAnnihilation(),
                                   random.Random(4))
    assert any("one_annihilating" in failure for failure in report.failures)


def test_axiom_audit_catches_wrong_offset():
    report = audit_declared_axioms(WrongOffset(), random.Random(5))
    assert any("offset" in failure for failure in report.failures)


def test_properties_record_rejects_inconsistencies():
    with pytest.raises(ValueError):
        SemiringProperties(one_annihilating=True, add_idempotent=False)
    with pytest.raises(ValueError):
        SemiringProperties(add_idempotent=True, offset=2)
    with pytest.raises(ValueError):
        SemiringProperties(mul_idempotent=True, offset=3)


# ---------------------------------------------------------------------------
# Service chaos: SIGKILLed workers must not change a single output byte.
# ---------------------------------------------------------------------------

CHAOS_SEMIRINGS = ["B", "N", "Lin[X]", "Why[X]", "T+", "N[X]"]
CHAOS_PAIRS = [
    ("Q() :- R(u, v), R(u, w)", "Q() :- R(u, v), R(u, v)"),
    ("Q() :- R(u, v)", "Q() :- R(u, v), R(u, v)"),
    ("Q() :- R(u, v), S(u)", "Q() :- R(u, v)"),
    ("Q() :- R(u, u)", "Q() :- R(u, v)"),
    ("Q() :- E(x, y), E(y, z)", "Q() :- E(u, v), E(v, u)"),
    ("Q() :- R(x, y), R(y, z), R(x, z)", "Q() :- R(a, b), R(b, c)"),
]


def chaos_workload(*, repeats: int = 2) -> list[dict]:
    """A mixed workload with duplicates, large enough to straddle a kill."""
    requests: list[dict] = []
    for semiring in CHAOS_SEMIRINGS:
        for q1, q2 in CHAOS_PAIRS:
            requests.append({"semiring": semiring, "q1": q1, "q2": q2})
    requests = requests * repeats
    for index, request in enumerate(requests):
        request = dict(request)
        request["id"] = f"c{index}"
        requests[index] = request
    return requests


def sequential_documents(requests) -> list[dict]:
    return [doc.to_dict()
            for doc in ContainmentEngine().decide_many(requests)]


def _wait_until(predicate, timeout: float = 20.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


def test_sigkill_mid_stream_keeps_output_byte_identical():
    requests = chaos_workload(repeats=2)
    assert len(requests) >= 70
    expected = sequential_documents(requests)
    with SupervisedWorkerPool(4) as pool:
        seqs = [pool.submit(pool.normalize(request))
                for request in requests]
        outcomes = [pool.result(seq, timeout=60) for seq in seqs[:10]]
        victim = next(pid for pid in pool.worker_pids() if pid)
        os.kill(victim, signal.SIGKILL)
        outcomes += [pool.result(seq, timeout=60) for seq in seqs[10:]]
        assert [outcome.to_dict() for outcome in outcomes] == expected
        assert pool.metrics.get("respawns") >= 1
        assert sum(pool.metrics.as_dict()["worker_restarts"]) >= 1


def test_respawned_worker_warm_starts_from_snapshot(tmp_path):
    path = tmp_path / "supervised.snap"
    requests = chaos_workload(repeats=1)
    with SupervisedWorkerPool(2, snapshot_path=path) as pool:
        first = pool.decide_many(requests)
        assert not any(isinstance(doc, DecisionError) for doc in first)
        pool.save_snapshot()
        victim = pool.worker_pids()[1]
        os.kill(victim, signal.SIGKILL)
        assert _wait_until(lambda: pool.metrics.get("respawns") >= 1), \
            "collector must respawn an idle-killed worker"
        assert _wait_until(
            lambda: pool.worker_pids()[1] not in (None, victim))
        second = pool.decide_many(requests)
        stats = pool.stats()
    # A sequential engine would serve the repeat pass entirely from its
    # verdict cache; the supervised pool must look exactly the same even
    # though one worker restarted with a verdict-stripped warm start.
    assert [doc.to_dict() for doc in second] \
        == sequential_documents(requests + requests)[len(requests):]
    assert all(doc.cached for doc in second)
    # The respawn imported the structural layers: re-decides on the new
    # process never re-ran a homomorphism search or classification.
    assert stats[1]["hom_calls"] == 0
    assert stats[1]["classify_calls"] == 0


def test_work_stealing_relieves_a_skewed_shard():
    with SupervisedWorkerPool(2, prefetch=1, steal_threshold=2) as pool:
        skewed: list[ContainmentRequest] = []
        index = 0
        while len(skewed) < 24:
            request = ContainmentRequest.make(
                f"Q() :- R(u, v), T{index}(u)", "Q() :- R(u, v)", "B")
            if pool.shard_of(request) == 0:
                skewed.append(request)
            index += 1
        expected = sequential_documents(skewed)
        outcomes = pool.decide_many(skewed)
        assert [outcome.to_dict() for outcome in outcomes] == expected
        assert pool.metrics.get("steals") > 0, \
            "an idle worker must have drained the overflow deque"


def test_exhausted_respawn_budget_retires_the_shard():
    with SupervisedWorkerPool(2, max_respawns=0) as pool:
        victim_index = 0
        pool._processes[victim_index].kill()
        assert _wait_until(lambda: victim_index in pool._dead), \
            "a shard past max_respawns must be retired, not respawned"
        assert pool.metrics.get("respawns") == 0
        dead_request = survivor_request = None
        for index in range(64):
            request = ContainmentRequest.make(
                f"Q() :- R(u, v), U{index}(u)", "Q() :- R(u, v)", "B")
            if pool.shard_of(request) == victim_index:
                dead_request = dead_request or request
            else:
                survivor_request = survivor_request or request
        failed = pool.decide_one(dead_request)
        assert isinstance(failed, DecisionError)
        assert "died" in failed.error
        assert pool.decide_one(survivor_request).result is True


def test_poisonous_request_fails_in_band_after_redrive_budget():
    with SupervisedWorkerPool(1, max_redrives=0) as pool:
        request = pool.normalize({"semiring": "B", "q1": "Q() :- R(u, v)",
                                  "q2": "Q() :- R(u, u)", "id": "poison"})
        pid = pool.worker_pids()[0]
        os.kill(pid, signal.SIGSTOP)
        try:
            seq = pool.submit(request)
            os.kill(pid, signal.SIGKILL)
            outcome = pool.result(seq, timeout=30)
        finally:
            try:  # harmless once the kill landed; frees the worker if not
                os.kill(pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
        assert isinstance(outcome, DecisionError)
        assert "giving up" in outcome.error
        assert outcome.id == "poison"
        assert pool.metrics.get("redrive_failures") == 1
        # The shard itself respawned and keeps serving fresh submissions.
        assert pool.decide_one(request).result is False
