"""Failure injection: the auditor must catch deliberately broken
semirings and mis-declared classification flags.

These tests defend the library's trust chain: the dispatcher believes
the declared `SemiringProperties`, so the auditor has to be able to
falsify wrong declarations.
"""

from __future__ import annotations

import random

import pytest

from repro.semirings import (Semiring, SemiringProperties,
                             audit_declared_axioms, audit_positivity,
                             audit_semiring_laws)


class BrokenDistributivity(Semiring):
    """max/plus hybrid that violates distributivity."""

    name = "broken-dist"
    properties = SemiringProperties(offset=1, add_idempotent=True)

    zero = property(lambda self: 0)
    one = property(lambda self: 1)

    def add(self, a, b):
        return max(a, b)

    def mul(self, a, b):
        return a + b  # identity is 0, not 1 → law violations

    def leq(self, a, b):
        return a <= b

    def sample(self, rng):
        return rng.randint(0, 5)


class WrongOrder(Semiring):
    """Boolean algebra with a reversed (non-positive) order."""

    name = "wrong-order"
    properties = SemiringProperties(
        mul_idempotent=True, one_annihilating=True, add_idempotent=True,
        mul_semi_idempotent=True, offset=1)

    zero = property(lambda self: False)
    one = property(lambda self: True)

    def add(self, a, b):
        return a or b

    def mul(self, a, b):
        return a and b

    def leq(self, a, b):
        return (not b) or a  # reversed: 0 is now the top

    def sample(self, rng):
        return rng.random() < 0.5


class OverclaimedIdempotence(Semiring):
    """Bag semantics declaring ⊗-idempotence it does not have."""

    name = "overclaimed"
    properties = SemiringProperties(
        mul_idempotent=True, mul_semi_idempotent=True, offset=2)

    zero = property(lambda self: 0)
    one = property(lambda self: 1)

    def add(self, a, b):
        return min(a + b, 2)

    def mul(self, a, b):
        return min(a * b, 3)  # inconsistent cap: 2·2 = 3 ≠ 2

    def leq(self, a, b):
        return a <= b

    def sample(self, rng):
        return rng.randint(0, 2)


class UnderclaimedAnnihilation(Semiring):
    """A lattice hiding its 1-annihilation (declared-False must be
    falsified by finding NO violation)."""

    name = "underclaimed"
    properties = SemiringProperties(
        mul_idempotent=True, one_annihilating=False, add_idempotent=True,
        mul_semi_idempotent=True, offset=1)

    zero = property(lambda self: 0)
    one = property(lambda self: 3)

    def add(self, a, b):
        return max(a, b)

    def mul(self, a, b):
        return min(a, b)

    def leq(self, a, b):
        return a <= b

    def sample(self, rng):
        return rng.randint(0, 3)


class WrongOffset(Semiring):
    """Saturating at 3 but declaring offset 2."""

    name = "wrong-offset"
    properties = SemiringProperties(mul_semi_idempotent=True, offset=2)

    zero = property(lambda self: 0)
    one = property(lambda self: 1)

    def add(self, a, b):
        return min(a + b, 3)

    def mul(self, a, b):
        return min(a * b, 3)

    def leq(self, a, b):
        return a <= b

    def sample(self, rng):
        return rng.randint(0, 3)


def test_laws_audit_catches_broken_distributivity():
    report = audit_semiring_laws(BrokenDistributivity(), random.Random(1))
    assert not report.ok


def test_positivity_audit_catches_reversed_order():
    report = audit_positivity(WrongOrder(), random.Random(2))
    assert not report.ok


def test_axiom_audit_catches_overclaimed_idempotence():
    report = audit_declared_axioms(OverclaimedIdempotence(),
                                   random.Random(3))
    assert any("mul_idempotent" in failure for failure in report.failures)


def test_axiom_audit_catches_underclaimed_annihilation():
    report = audit_declared_axioms(UnderclaimedAnnihilation(),
                                   random.Random(4))
    assert any("one_annihilating" in failure for failure in report.failures)


def test_axiom_audit_catches_wrong_offset():
    report = audit_declared_axioms(WrongOffset(), random.Random(5))
    assert any("offset" in failure for failure in report.failures)


def test_properties_record_rejects_inconsistencies():
    with pytest.raises(ValueError):
        SemiringProperties(one_annihilating=True, add_idempotent=False)
    with pytest.raises(ValueError):
        SemiringProperties(add_idempotent=True, offset=2)
    with pytest.raises(ValueError):
        SemiringProperties(mul_idempotent=True, offset=3)
