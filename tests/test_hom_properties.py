"""Structural properties of the homomorphism search.

Algebraic sanity laws that any correct containment-mapping engine must
satisfy: identity, composition, kind-composition, and the interaction
with query isomorphism.
"""

from __future__ import annotations

import random

import pytest

from repro.homomorphisms import (HomKind, are_isomorphic, find_homomorphism,
                                 has_homomorphism, homomorphisms)
from repro.queries import Var, parse_cq
from repro.queries.generators import random_cq


def _compose(inner: dict, outer: dict) -> dict:
    """outer ∘ inner on variables (constants pass through)."""
    composed = {}
    for var, image in inner.items():
        composed[var] = outer.get(image, image) if isinstance(image, Var) \
            else image
    return composed


def _check(source, target, mapping) -> bool:
    from repro.core.explain import check_homomorphism_certificate
    return check_homomorphism_certificate(source, target, mapping)


def test_identity_is_homomorphism():
    rng = random.Random(1)
    for _ in range(10):
        query = random_cq(rng, max_atoms=3, max_vars=3)
        identity = {var: var for var in query.variables()}
        assert _check(query, query, identity)


@pytest.mark.parametrize("seed", range(15))
def test_composition_is_homomorphism(seed):
    """h : Q3→Q2 and g : Q2→Q1 compose to a hom Q3→Q1."""
    rng = random.Random(seed)
    q1 = random_cq(rng, max_atoms=3, max_vars=3)
    q2 = random_cq(rng, max_atoms=3, max_vars=3)
    q3 = random_cq(rng, max_atoms=2, max_vars=2)
    g = find_homomorphism(q2, q1)
    h = find_homomorphism(q3, q2)
    if g is None or h is None:
        return
    assert _check(q3, q1, _compose(h, g))


def test_surjective_compose_surjective():
    q1 = parse_cq("Q() :- R(u, u)")
    q2 = parse_cq("Q() :- R(x, x), R(x, y)")
    q3 = parse_cq("Q() :- R(a, a), R(a, b), R(b, b)")
    g = find_homomorphism(q2, q1, HomKind.SURJECTIVE)
    h = find_homomorphism(q3, q2, HomKind.SURJECTIVE)
    if g is not None and h is not None:
        from repro.core.explain import check_homomorphism_certificate
        assert check_homomorphism_certificate(
            q3, q1, _compose(h, g), HomKind.SURJECTIVE)


@pytest.mark.parametrize("seed", range(10))
def test_hom_existence_isomorphism_invariant(seed):
    """Renaming either side never changes existence, for any kind."""
    rng = random.Random(300 + seed)
    q1 = random_cq(rng, max_atoms=2, max_vars=3)
    q2 = random_cq(rng, max_atoms=2, max_vars=3)
    q1_renamed = q1.rename_apart("_p")
    q2_renamed = q2.rename_apart("_q")
    assert are_isomorphic(q1, q1_renamed)
    for kind in HomKind:
        assert has_homomorphism(q2, q1, kind) == has_homomorphism(
            q2_renamed, q1_renamed, kind), kind


def test_hom_count_bounded_by_variable_images():
    """|homs| ≤ |target terms| ^ |source existentials| — sanity bound."""
    source = parse_cq("Q() :- R(x, y)")
    target = parse_cq("Q() :- R(a, b), R(b, c)")
    count = len(list(homomorphisms(source, target)))
    assert 1 <= count <= 3 ** 2


def test_isomorphic_queries_have_bijective_homs_both_ways():
    rng = random.Random(9)
    for _ in range(10):
        query = random_cq(rng, max_atoms=3, max_vars=3)
        renamed = query.rename_apart("_z")
        assert has_homomorphism(query, renamed, HomKind.BIJECTIVE)
        assert has_homomorphism(renamed, query, HomKind.BIJECTIVE)
