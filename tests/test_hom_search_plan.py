"""The indexed, plan-driven homomorphism search (PR 2).

Edge cases are pinned two ways: against the preserved pre-rewrite
searcher (:mod:`repro.homomorphisms._reference`, exact mapping-set
equality) and against the semantic oracle (decision procedures built on
the new search must never be refuted by a concrete annotated instance).
"""

from __future__ import annotations

import random

import pytest

from repro.core import decide_cq_containment
from repro.homomorphisms import (HomKind, find_homomorphism,
                                 has_homomorphism, homomorphisms)
from repro.homomorphisms._reference import (reference_find_homomorphism,
                                            reference_homomorphisms)
from repro.oracle import find_counterexample
from repro.queries import CQ, Atom, Var, parse_cq
from repro.queries.ccq import complete_description
from repro.queries.generators import random_cq


def mapping_set(source, target, kind):
    return {frozenset(h.items())
            for h in homomorphisms(source, target, kind)}


def reference_set(source, target, kind):
    return {frozenset(h.items())
            for h in reference_homomorphisms(source, target, kind)}


# --- repeated head variables --------------------------------------------

def test_repeated_head_variables_bind_consistently():
    # Q(x, x) forces both head positions onto the same target terms.
    source = parse_cq("Q(x, x) :- R(x, y)")
    ok = parse_cq("Q(a, a) :- R(a, b)")
    bad = parse_cq("Q(a, c) :- R(a, b), R(c, b)")
    assert has_homomorphism(source, ok)
    assert not has_homomorphism(source, bad)


def test_repeated_head_variables_conflicting_targets():
    # The target head repeats too, but with a different pattern.
    source = parse_cq("Q(x, y, x) :- R(x, y)")
    target = parse_cq("Q(a, b, b) :- R(a, b)")
    assert not has_homomorphism(source, target)
    agreeing = parse_cq("Q(a, b, a) :- R(a, b)")
    assert has_homomorphism(source, agreeing)


def test_repeated_head_variables_all_kinds_match_reference():
    for src, dst in [
        ("Q(x, x) :- R(x, x)", "Q(a, a) :- R(a, a)"),
        ("Q(x, x) :- R(x, y)", "Q(a, a) :- R(a, b), R(a, a)"),
        ("Q(x, y) :- R(x, y)", "Q(a, a) :- R(a, a)"),
    ]:
        source, target = parse_cq(src), parse_cq(dst)
        for kind in HomKind:
            assert mapping_set(source, target, kind) == \
                reference_set(source, target, kind), (src, dst, kind)


# --- inequality preservation with constants -----------------------------

def test_inequality_onto_distinct_constants_allowed():
    source = parse_cq("Q() :- R(x, y), x != y")
    target = parse_cq("Q() :- R('c', 'd')")
    assert has_homomorphism(source, target)


def test_inequality_onto_equal_constants_rejected():
    source = parse_cq("Q() :- R(x, y), x != y")
    target = parse_cq("Q() :- R('c', 'c')")
    assert not has_homomorphism(source, target)


def test_inequality_mixed_constant_variable_rejected():
    # A constant/variable image pair is never guaranteed separated: the
    # variable may be valuated to the constant.
    source = parse_cq("Q() :- R(x, y), x != y")
    target = parse_cq("Q() :- R('c', b)")
    assert not has_homomorphism(source, target)


def test_inequality_needs_target_inequality_between_existentials():
    source = parse_cq("Q() :- R(x, y), x != y")
    constrained = parse_cq("Q() :- R(a, b), a != b")
    unconstrained = parse_cq("Q() :- R(a, b)")
    assert has_homomorphism(source, constrained)
    assert not has_homomorphism(source, unconstrained)


def test_inequality_with_head_variable_images_rejected():
    # Images must be *existential* target variables: a free variable is
    # not guaranteed distinct from anything.
    source = parse_cq("Q(z) :- R(x, y), S(z), x != y")
    target = parse_cq("Q(c) :- R(c, b), S(c), b != c")
    assert not has_homomorphism(source, target)


def test_inequality_incremental_pruning_matches_reference():
    # CCQ quotients exercise dense inequality sets.
    rng = random.Random(1405)
    for _ in range(40):
        base_s = random_cq(rng, max_atoms=3, max_vars=3)
        base_t = random_cq(rng, max_atoms=3, max_vars=3)
        for source in complete_description(base_s):
            for target in complete_description(base_t):
                for kind in HomKind:
                    assert mapping_set(source, target, kind) == \
                        reference_set(source, target, kind)


# --- surjective / bijective multiset pruning ----------------------------

def test_surjective_multiset_counts():
    assert has_homomorphism(parse_cq("Q() :- R(x, x), R(y, y)"),
                            parse_cq("Q() :- R(u, u)"),
                            HomKind.SURJECTIVE)
    # two target occurrences need two source preimages
    assert not has_homomorphism(parse_cq("Q() :- R(x, x)"),
                                parse_cq("Q() :- R(u, u), R(u, u)"),
                                HomKind.SURJECTIVE)
    assert has_homomorphism(parse_cq("Q() :- R(x, x), R(y, y)"),
                            parse_cq("Q() :- R(u, u), R(u, u)"),
                            HomKind.SURJECTIVE)


def test_surjective_relation_profile_prune_is_sound():
    # S-atoms cannot cover R-occurrences: profile prune must refute
    # without losing the homs that do exist.
    source = parse_cq("Q() :- R(x, y), S(x)")
    target = parse_cq("Q() :- R(a, b), R(c, d)")
    assert not has_homomorphism(source, target, HomKind.SURJECTIVE)
    wide = parse_cq("Q() :- R(x, y), R(z, w), S(x)")
    narrow = parse_cq("Q() :- R(a, b), S(a)")
    assert has_homomorphism(wide, narrow, HomKind.SURJECTIVE)


def test_bijective_profile_mismatch_refutes():
    source = parse_cq("Q() :- R(x, y), S(x)")
    target = parse_cq("Q() :- R(a, b), R(a, c)")
    assert not has_homomorphism(source, target, HomKind.BIJECTIVE)


def test_bijective_collapse_needs_capacity():
    assert has_homomorphism(parse_cq("Q() :- R(x, y), R(x, z)"),
                            parse_cq("Q() :- R(a, b), R(a, b)"),
                            HomKind.BIJECTIVE)
    assert not has_homomorphism(parse_cq("Q() :- R(x, y), R(x, y)"),
                                parse_cq("Q() :- R(a, b), R(a, c)"),
                                HomKind.BIJECTIVE)


def test_covering_prune_on_long_chains():
    # chain(n) ։ chain(n-1) must fail although plain homs abound; the
    # multiset-coverage prune has to cut the search, not the answers.
    def chain(length):
        return CQ((), [Atom("E", (Var(f"v{i}"), Var(f"v{i + 1}")))
                       for i in range(length)])

    assert has_homomorphism(chain(8), chain(8), HomKind.SURJECTIVE)
    assert not has_homomorphism(chain(9), chain(8), HomKind.SURJECTIVE)
    assert has_homomorphism(chain(8), chain(8), HomKind.BIJECTIVE)
    assert not has_homomorphism(chain(9), chain(8), HomKind.BIJECTIVE)


# --- old/new answer equivalence on random pairs -------------------------

@pytest.mark.parametrize("seed", range(20))
def test_random_pairs_equal_mapping_sets(seed):
    rng = random.Random(9000 + seed)
    head_arity = rng.choice((0, 0, 1, 2))
    source = random_cq(rng, max_atoms=4, max_vars=4, head_arity=head_arity)
    target = random_cq(rng, max_atoms=4, max_vars=4, head_arity=head_arity)
    for kind in HomKind:
        assert mapping_set(source, target, kind) == \
            reference_set(source, target, kind), (source, target, kind)


@pytest.mark.parametrize("seed", range(10))
def test_random_pairs_find_agrees_on_existence(seed):
    rng = random.Random(7700 + seed)
    source = random_cq(rng, max_atoms=5, max_vars=4)
    target = random_cq(rng, max_atoms=5, max_vars=4)
    for kind in HomKind:
        new = find_homomorphism(source, target, kind)
        old = reference_find_homomorphism(source, target, kind)
        assert (new is None) == (old is None), (source, target, kind)
        if new is not None:
            # Any returned witness must be a valid certificate.
            from repro.core.explain import check_homomorphism_certificate
            assert check_homomorphism_certificate(source, target, new, kind)


def test_enumeration_deduplicates_and_is_exhaustive():
    source = parse_cq("Q() :- R(x, y)")
    target = parse_cq("Q() :- R(a, b), R(a, c)")
    found = list(homomorphisms(source, target))
    assert len(found) == 2
    assert len({frozenset(h.items()) for h in found}) == 2


# --- oracle pinning -----------------------------------------------------

@pytest.mark.parametrize("semiring_name, q1, q2, expected", [
    # Ex. 4.6 over Sorp[X] (Cin): holds one way, fails the other.
    ("Sorp[X]", "Q() :- R(u, v), R(u, w)", "Q() :- R(u, v), R(u, v)",
     False),
    ("Sorp[X]", "Q() :- R(u, v), R(u, v)", "Q() :- R(u, v), R(u, w)",
     True),
    # Surjective characterization for Ssur[X] (Csur).
    ("Ssur[X]", "Q() :- R(u, v), R(u, w)", "Q() :- R(x, y), R(x, z)",
     True),
    ("Ssur[X]", "Q() :- R(u, v), R(u, w)", "Q() :- R(x, y), R(x, y)",
     False),
    # Lineage (Chcov): covering with repeated head variables.
    ("Lin[X]", "Q(x) :- R(x, y), R(x, z)", "Q(u) :- R(u, w)", True),
])
def test_search_backed_verdicts_match_oracle(semiring_name, q1, q2,
                                             expected):
    from repro.semirings import get_semiring

    semiring = get_semiring(semiring_name)
    verdict = decide_cq_containment(parse_cq(q1), parse_cq(q2), semiring)
    assert verdict.result is expected
    witness = find_counterexample(parse_cq(q1), parse_cq(q2), semiring,
                                  rng=random.Random(3), budget=500,
                                  random_rounds=5)
    if expected:
        assert witness is None
    else:
        assert witness is not None


@pytest.mark.parametrize("seed", range(6))
def test_random_decisions_never_semantically_refuted(seed):
    """Verdicts built on the new searcher stay oracle-sound."""
    from repro.semirings import LIN, SORP, TMINUS, TPLUS

    rng = random.Random(31 + seed)
    q1 = random_cq(rng, max_atoms=3, max_vars=3)
    q2 = random_cq(rng, max_atoms=3, max_vars=3)
    for semiring in (LIN, SORP, TPLUS, TMINUS):
        verdict = decide_cq_containment(q1, q2, semiring)
        assert verdict.decided
        if verdict.result:
            assert find_counterexample(
                q1, q2, semiring, rng=random.Random(5), budget=400,
                random_rounds=4) is None, (semiring.name, q1, q2)
