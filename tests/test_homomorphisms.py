"""The four homomorphism kinds (Sec. 3.3–4.4) and their search."""

from __future__ import annotations

import random

import pytest

from repro.homomorphisms import (HomKind, find_homomorphism,
                                 has_homomorphism, homomorphisms)
from repro.queries import Var, parse_cq
from repro.queries.generators import random_cq


def hom(src, dst, kind=HomKind.PLAIN):
    return has_homomorphism(parse_cq(src), parse_cq(dst), kind)


# --- plain homomorphisms (Chandra–Merlin) -------------------------------

def test_collapse_homomorphism():
    assert hom("Q() :- R(x, y)", "Q() :- R(u, u)")
    assert not hom("Q() :- R(x, x)", "Q() :- R(u, v)")


def test_head_positional_matching():
    assert hom("Q(x) :- R(x, y)", "Q(a) :- R(a, b)")
    # head variable must land on the target head variable
    assert not hom("Q(x) :- R(x, x)", "Q(a) :- R(a, b)")


def test_head_repetition():
    assert hom("Q(x, x) :- R(x, x)", "Q(a, a) :- R(a, a)")
    assert not hom("Q(x, y) :- R(x, y)", "Q(a, a) :- R(a, a)") or True
    # distinct source head vars may merge onto one target var:
    assert hom("Q(x, y) :- R(x, y)", "Q(a, a) :- R(a, a)")


def test_arity_mismatch_no_hom():
    assert not hom("Q(x) :- R(x, x)", "Q() :- R(u, u)")


def test_constants_must_match():
    assert hom("Q() :- R(x, 'c')", "Q() :- R(u, 'c')")
    assert not hom("Q() :- R(x, 'c')", "Q() :- R(u, 'd')")
    # variables may map onto constants
    assert hom("Q() :- R(x, y)", "Q() :- R(u, 'c')")


def test_path_onto_cycle():
    path = "Q() :- E(x, y), E(y, z)"
    cycle = "Q() :- E(u, v), E(v, u)"
    assert hom(path, cycle)
    assert not hom(cycle, path)


def test_mapping_is_returned():
    mapping = find_homomorphism(parse_cq("Q() :- R(x, y)"),
                                parse_cq("Q() :- R(u, u)"))
    assert mapping == {Var("x"): Var("u"), Var("y"): Var("u")}


def test_enumeration_deduplicates():
    source = parse_cq("Q() :- R(x, y)")
    target = parse_cq("Q() :- R(a, b), R(a, c)")
    all_homs = list(homomorphisms(source, target))
    assert len(all_homs) == 2
    assert len({frozenset(h.items()) for h in all_homs}) == 2


# --- injective homomorphisms (Sec. 4.2) ---------------------------------

def test_injective_example_4_6():
    """No injective hom from R(u,v),R(u,v) to R(u,v),R(u,w)."""
    q1 = "Q() :- R(u, v), R(u, w)"
    q2 = "Q() :- R(u, v), R(u, v)"
    assert hom(q2, q1, HomKind.PLAIN)
    assert not hom(q2, q1, HomKind.INJECTIVE)


def test_injective_into_duplicates():
    """Duplicate target atoms provide capacity for duplicate images."""
    q_target = "Q() :- R(u, v), R(u, v)"
    q_source = "Q() :- R(x, y), R(x, y)"
    assert hom(q_source, q_target, HomKind.INJECTIVE)


def test_injective_needs_capacity():
    q_source = "Q() :- R(x, y), R(x, y), R(x, y)"
    q_target = "Q() :- R(u, v), R(u, v)"
    assert not hom(q_source, q_target, HomKind.INJECTIVE)


def test_injective_distinct_images():
    assert hom("Q() :- R(x, y), S(y)", "Q() :- R(a, b), S(b), S(c)",
               HomKind.INJECTIVE)


# --- surjective homomorphisms (Sec. 4.4) --------------------------------

def test_surjective_covers_all_occurrences():
    # source has 2 atoms, target 1: both map onto it — onto holds.
    assert hom("Q() :- R(x, x), R(y, y)", "Q() :- R(u, u)",
               HomKind.SURJECTIVE)
    # target has two occurrences, source only one atom: impossible.
    assert not hom("Q() :- R(x, x)", "Q() :- R(u, u), R(u, u)",
                   HomKind.SURJECTIVE)


def test_surjective_needs_all_atom_values():
    q1 = "Q() :- R(u, v), R(u, w)"   # two distinct atoms
    q2 = "Q() :- R(x, y), R(x, y)"   # collapses to one image atom
    assert not hom(q2, q1, HomKind.SURJECTIVE)
    q3 = "Q() :- R(x, y), R(x, z)"
    assert hom(q3, q1, HomKind.SURJECTIVE)


# --- bijective homomorphisms (Sec. 4.3) ---------------------------------

def test_bijective_is_exact():
    q = "Q() :- R(x, y), R(y, x)"
    assert hom(q, "Q() :- R(a, b), R(b, a)", HomKind.BIJECTIVE)
    assert not hom(q, "Q() :- R(a, b)", HomKind.BIJECTIVE)
    assert not hom("Q() :- R(x, y)", "Q() :- R(a, b), R(b, a)",
                   HomKind.BIJECTIVE)


def test_bijective_respects_multiplicity():
    assert hom("Q() :- R(x, y), R(x, y)", "Q() :- R(a, b), R(a, b)",
               HomKind.BIJECTIVE)
    assert not hom("Q() :- R(x, y), R(x, y)", "Q() :- R(a, b), R(a, c)",
                   HomKind.BIJECTIVE)


def test_bijective_collapse_onto_duplicates():
    """Distinct source atoms may collapse onto duplicated target
    occurrences: the multiset image {R(a,b), R(a,b)} matches exactly."""
    assert hom("Q() :- R(x, y), R(x, z)", "Q() :- R(a, b), R(a, b)",
               HomKind.BIJECTIVE)


# --- relationships between the kinds ------------------------------------

@pytest.mark.parametrize("seed", range(12))
def test_bijective_iff_injective_and_surjective_exists(seed):
    """Per-mapping: h bijective ⟺ h injective ∧ h surjective.  We verify
    it on the searchable level for random pairs by checking each
    enumerated bijective mapping is found by both other modes."""
    rng = random.Random(seed)
    source = random_cq(rng, max_atoms=3, max_vars=3)
    target = random_cq(rng, max_atoms=3, max_vars=3)
    bijective = {frozenset(h.items())
                 for h in homomorphisms(source, target, HomKind.BIJECTIVE)}
    injective = {frozenset(h.items())
                 for h in homomorphisms(source, target, HomKind.INJECTIVE)}
    surjective = {frozenset(h.items())
                  for h in homomorphisms(source, target, HomKind.SURJECTIVE)}
    assert bijective == injective & surjective


@pytest.mark.parametrize("seed", range(12))
def test_refinements_imply_plain(seed):
    rng = random.Random(100 + seed)
    source = random_cq(rng, max_atoms=3, max_vars=3)
    target = random_cq(rng, max_atoms=3, max_vars=3)
    plain = {frozenset(h.items())
             for h in homomorphisms(source, target, HomKind.PLAIN)}
    for kind in (HomKind.INJECTIVE, HomKind.SURJECTIVE, HomKind.BIJECTIVE):
        refined = {frozenset(h.items())
                   for h in homomorphisms(source, target, kind)}
        assert refined <= plain


# --- inequality preservation (CCQ homomorphisms) ------------------------

def test_ccq_hom_requires_target_inequality():
    source = parse_cq("Q() :- R(x, y), x != y")
    good = parse_cq("Q() :- R(a, b), a != b")
    bad = parse_cq("Q() :- R(a, b)")
    assert has_homomorphism(source, good)
    assert not has_homomorphism(source, bad)


def test_ccq_hom_cannot_collapse_unequal_pair():
    source = parse_cq("Q() :- R(x, y), x != y")
    target = parse_cq("Q() :- R(a, a)")
    assert not has_homomorphism(source, target)


def test_plain_source_into_ccq_target():
    """A source without inequalities may map anywhere."""
    source = parse_cq("Q() :- R(x, y)")
    target = parse_cq("Q() :- R(a, b), a != b")
    assert has_homomorphism(source, target)


def test_ccq_inequality_to_constants():
    source = parse_cq("Q() :- R(x, y), x != y")
    target = parse_cq("Q() :- R('c', 'd')")
    assert has_homomorphism(source, target)
    clash = parse_cq("Q() :- R('c', 'c')")
    assert not has_homomorphism(source, clash)
