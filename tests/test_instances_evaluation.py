"""K-instances, canonical instances and query evaluation semantics."""

from __future__ import annotations

import math

import pytest

from repro.data import Instance, canonical_instance
from repro.polynomials import Polynomial
from repro.queries import (UCQ, evaluate, evaluate_all, parse_cq, parse_ucq,
                           valuations, Var)
from repro.semirings import ACCESS, B, N, NX, TPLUS, WHY


# --- Instance ----------------------------------------------------------

def test_instance_drops_zeros():
    instance = Instance(N, {"R": {(1, 2): 0, (1, 3): 5}})
    assert instance.fact_count() == 1
    assert instance.annotation("R", (1, 2)) == 0
    assert instance.annotation("R", (1, 3)) == 5
    assert instance.annotation("Missing", (9,)) == 0


def test_instance_arity_check():
    with pytest.raises(ValueError):
        Instance(N, {"R": {(1, 2): 1, (1,): 1}})


def test_instance_from_facts_accumulates():
    instance = Instance.from_facts(N, [("R", (1,), 2), ("R", (1,), 3)])
    assert instance.annotation("R", (1,)) == 5


def test_instance_with_fact():
    base = Instance(N, {"R": {(1,): 1}})
    extended = base.with_fact("R", (1,), 2)
    assert base.annotation("R", (1,)) == 1       # base untouched
    assert extended.annotation("R", (1,)) == 3


def test_active_domain():
    instance = Instance(N, {"R": {(1, 2): 1}, "S": {("a",): 1}})
    assert instance.active_domain() == frozenset({1, 2, "a"})


def test_map_annotations():
    instance = Instance(NX, {"R": {(1,): NX.var("x")}})
    mapped = instance.map_annotations(N, lambda p: p.eval_in(N, {"x": 4}))
    assert mapped.annotation("R", (1,)) == 4
    assert mapped.semiring is N


# --- evaluation: bag counting (the SQL story) ---------------------------

def test_bag_count_join():
    """Q(x) :- R(x,y), S(y): multiplicities multiply and sum."""
    instance = Instance(N, {
        "R": {("a", "b"): 2, ("a", "c"): 1},
        "S": {("b",): 3, ("c",): 5},
    })
    q = parse_cq("Q(x) :- R(x, y), S(y)")
    assert evaluate(q, instance, ("a",)) == 2 * 3 + 1 * 5
    assert evaluate(q, instance, ("zzz",)) == 0


def test_duplicate_atom_squares():
    """A duplicated atom multiplies its annotation twice (multiset!)."""
    instance = Instance(N, {"R": {("a",): 3}})
    q1 = parse_cq("Q() :- R(x)")
    q2 = parse_cq("Q() :- R(x), R(x)")
    assert evaluate(q1, instance, ()) == 3
    assert evaluate(q2, instance, ()) == 9


def test_boolean_evaluation_is_satisfaction():
    instance = Instance(B, {"R": {("a", "b"): True}})
    q = parse_cq("Q() :- R(x, y)")
    assert evaluate(q, instance, ()) is True
    q_selfjoin = parse_cq("Q() :- R(x, x)")
    assert evaluate(q_selfjoin, instance, ()) is False


def test_tropical_evaluation_minimizes_cost():
    instance = Instance(TPLUS, {
        "F": {("e", "l"): 60, ("l", "p"): 80, ("e", "p"): 190},
    })
    q = parse_cq("Q(x, z) :- F(x, y), F(y, z)")
    assert evaluate(q, instance, ("e", "p")) == 140
    direct = parse_cq("Q(x, z) :- F(x, z)")
    both = UCQ((q, direct))
    assert evaluate(both, instance, ("e", "p")) == 140


def test_why_provenance_collects_witnesses():
    instance = Instance(WHY, {
        "R": {("a",): WHY.var("t1"), ("b",): WHY.var("t2")},
        "S": {("a",): WHY.var("t3")},
    })
    q = parse_cq("Q() :- R(x), S(x)")
    assert evaluate(q, instance, ()) == frozenset({
        frozenset({"t1", "t3"})})


def test_access_clearance_join():
    level = ACCESS.level
    instance = Instance(ACCESS, {
        "E": {("ada", "eng"): level("public")},
        "P": {("eng", "bridge"): level("secret")},
    })
    q = parse_cq("Q(n) :- E(n, d), P(d, p)")
    assert evaluate(q, instance, ("ada",)) == level("secret")


def test_constants_in_query():
    instance = Instance(N, {"R": {("a", "b"): 2, ("c", "b"): 7}})
    q = parse_cq("Q() :- R('a', y)")
    assert evaluate(q, instance, ()) == 2


def test_repeated_head_variable():
    instance = Instance(N, {"R": {("a", "a"): 2, ("a", "b"): 5}})
    q = parse_cq("Q(x, x) :- R(x, x)")
    assert evaluate(q, instance, ("a", "a")) == 2
    assert evaluate(q, instance, ("a", "b")) == 0


def test_empty_ucq_evaluates_to_zero():
    instance = Instance(N, {"R": {("a",): 1}})
    assert evaluate(UCQ(()), instance, ()) == 0


def test_ucq_sums_members():
    instance = Instance(N, {"R": {("a",): 2}, "S": {("a",): 3}})
    u = parse_ucq(["Q() :- R(x)", "Q() :- S(x)"])
    assert evaluate(u, instance, ()) == 5


def test_inequalities_filter_valuations():
    instance = Instance(N, {"R": {("a", "a"): 3, ("a", "b"): 5}})
    plain = parse_cq("Q() :- R(x, y)")
    ccq = parse_cq("Q() :- R(x, y), x != y")
    assert evaluate(plain, instance, ()) == 8
    assert evaluate(ccq, instance, ()) == 5


def test_evaluate_all():
    instance = Instance(N, {"R": {("a", "b"): 2, ("c", "b"): 1}})
    q = parse_cq("Q(x) :- R(x, y)")
    assert evaluate_all(q, instance) == {("a",): 2, ("c",): 1}


def test_target_arity_mismatch():
    instance = Instance(N, {"R": {("a",): 1}})
    q = parse_cq("Q(x) :- R(x)")
    with pytest.raises(ValueError):
        evaluate(q, instance, ("a", "b"))


def test_valuations_enumeration():
    instance = Instance(N, {"R": {("a", "b"): 1, ("b", "b"): 1}})
    q = parse_cq("Q() :- R(x, y)")
    found = {tuple(sorted((k.name, v) for k, v in m.items()))
             for m in valuations(q, instance, ())}
    assert found == {
        (("x", "a"), ("y", "b")),
        (("x", "b"), ("y", "b")),
    }


# --- canonical instances (Ex. 4.6 continued) ----------------------------

def test_canonical_instance_tags_unique():
    q = parse_cq("Q() :- R(u, v), R(u, w)")
    tagged = canonical_instance(q)
    assert tagged.tag_names == ("z1", "z2")
    u, v, w = Var("u"), Var("v"), Var("w")
    assert tagged.instance.annotation("R", (u, v)) == Polynomial.variable("z1")
    assert tagged.instance.annotation("R", (u, w)) == Polynomial.variable("z2")


def test_canonical_instance_duplicate_atoms_sum():
    """⟦Q12⟧ of Ex. 4.6: duplicated atom is annotated x1 + x2."""
    q12 = parse_cq("Q() :- R(u, v), R(u, v), u != v")
    tagged = canonical_instance(q12)
    u, v = Var("u"), Var("v")
    assert tagged.instance.annotation("R", (u, v)) == (
        Polynomial.variable("z1") + Polynomial.variable("z2"))


def test_canonical_evaluation_matches_paper():
    """Q1^⟦Q11⟧ = x1² + 2x1x2 + x2², Q2^⟦Q11⟧ = x1² + x2²."""
    q11 = parse_cq("Q() :- R(u, v), R(u, w), u != v, u != w, v != w")
    tagged = canonical_instance(q11)
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")
    assert evaluate(q1, tagged.instance, (), NX) == Polynomial.parse_terms(
        [(1, ("z1", "z1")), (2, ("z1", "z2")), (1, ("z2", "z2"))])
    assert evaluate(q2, tagged.instance, (), NX) == Polynomial.parse_terms(
        [(1, ("z1", "z1")), (1, ("z2", "z2"))])
