"""Tests for ``repro.lint`` — the project invariant checker.

Each rule gets a pair of fixtures: a seeded violation it must fire on
and the clean idiom it must stay silent on.  Fixtures are written as
miniature ``repro`` package trees under ``tmp_path`` — the linter is a
pure AST pass and never imports them, so they cannot collide with the
real installed package.  On top of the per-rule pairs: pragma
suppression, the JSON reporter schema, CLI exit codes, and the
self-check that the repository's own tree lints clean.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import render_json, run_lint


def _write_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialize a mini ``repro`` package tree; returns its root."""
    package = root / "repro"
    for relative, text in files.items():
        path = package / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        # every directory on the way needs to be a package
        current = path.parent
        while current != root:
            init = current / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
            current = current.parent
    return package


def _rules_fired(report) -> set[str]:
    return {finding.rule for finding in report.findings}


# -- RL001: context threading ------------------------------------------


_CONTEXT_DEF = """
def decide_cq_containment(q1, q2, semiring, *, context=None):
    return True


def _private_helper(q1, *, context=None):
    return None


def no_context_here(q1, q2):
    return False
"""


def test_rl001_fires_on_unthreaded_call(tmp_path):
    package = _write_tree(tmp_path, {
        "core/containment.py": _CONTEXT_DEF,
        "optimize/minimize.py": (
            "from ..core.containment import decide_cq_containment\n\n\n"
            "def minimize(q, s):\n"
            "    return decide_cq_containment(q, q, s)\n"),
    })
    report = run_lint([package], rule_ids=["RL001"])
    assert [f.rule for f in report.findings] == ["RL001"]
    finding = report.findings[0]
    assert finding.path.endswith("minimize.py")
    assert "decide_cq_containment" in finding.message
    assert finding.line == 5


def test_rl001_silent_on_threaded_and_uncovered_calls(tmp_path):
    package = _write_tree(tmp_path, {
        "core/containment.py": _CONTEXT_DEF,
        "optimize/minimize.py": (
            "from ..core.containment import (decide_cq_containment,\n"
            "                                no_context_here)\n\n\n"
            "def minimize(q, s, *, context=None):\n"
            "    no_context_here(q, q)\n"  # takes no context: not covered
            "    return decide_cq_containment(q, q, s, context=context)\n"),
    })
    report = run_lint([package], rule_ids=["RL001"])
    assert report.clean


def test_rl001_recognizes_package_reexports(tmp_path):
    package = _write_tree(tmp_path, {
        "core/containment.py": _CONTEXT_DEF,
        "core/__init__.py": (
            "from .containment import decide_cq_containment\n"
            "__all__ = [\"decide_cq_containment\"]\n"),
        "algebra/rewrite.py": (
            "from ..core import decide_cq_containment\n\n\n"
            "def check(q, s):\n"
            "    return decide_cq_containment(q, q, s)\n"),
    })
    report = run_lint([package], rule_ids=["RL001"])
    assert len(report.findings) == 1
    assert report.findings[0].path.endswith("rewrite.py")


def test_rl001_kwargs_splat_counts_as_threaded(tmp_path):
    package = _write_tree(tmp_path, {
        "core/containment.py": _CONTEXT_DEF,
        "optimize/wrap.py": (
            "from ..core.containment import decide_cq_containment\n\n\n"
            "def forward(q, s, **kwargs):\n"
            "    return decide_cq_containment(q, q, s, **kwargs)\n"),
    })
    report = run_lint([package], rule_ids=["RL001"])
    assert report.clean


# -- RL002: cache-layer completeness -----------------------------------


_LAYERS_OK = """
class CacheLayer:
    pass


CACHE_LAYERS = (
    CacheLayer(name="parsed", attr="_parsed", hits="parse_hits",
               calls="parse_calls", entries="parsed_entries"),
)
"""

_ENGINE_OK = """
class EngineStats:
    parse_hits: int = 0
    parse_calls: int = 0


class _LRU:
    pass


class ContainmentEngine:
    def __init__(self):
        self._parsed = _LRU(8)

    def export_caches(self):
        return {layer.name: getattr(self, layer.attr)
                for layer in CACHE_LAYERS}

    def import_caches(self, state):
        for layer in CACHE_LAYERS:
            state.get(layer.name)
"""

_SNAPSHOT_OK = """
from ..api.layers import SNAPSHOT_LAYERS as _LAYERS
"""


def test_rl002_silent_on_registry_driven_engine(tmp_path):
    package = _write_tree(tmp_path, {
        "api/layers.py": _LAYERS_OK,
        "api/engine.py": _ENGINE_OK,
        "service/snapshot.py": _SNAPSHOT_OK,
    })
    report = run_lint([package], rule_ids=["RL002"])
    assert report.clean, report.findings


def test_rl002_fires_on_undeclared_store(tmp_path):
    engine = _ENGINE_OK.replace(
        "self._parsed = _LRU(8)",
        "self._parsed = _LRU(8)\n        self._rogue = _LRU(8)")
    package = _write_tree(tmp_path, {
        "api/layers.py": _LAYERS_OK,
        "api/engine.py": engine,
        "service/snapshot.py": _SNAPSHOT_OK,
    })
    report = run_lint([package], rule_ids=["RL002"])
    assert any("_rogue" in f.message for f in report.findings)


def test_rl002_fires_on_phantom_layer_and_bad_counter(tmp_path):
    layers = _LAYERS_OK.replace(
        "               calls=\"parse_calls\", entries=\"parsed_entries\"),",
        "               calls=\"parse_calls\", entries=\"parsed_entries\"),\n"
        "    CacheLayer(name=\"ghost\", attr=\"_ghost\",\n"
        "               hits=\"ghost_hits\", calls=\"ghost_calls\",\n"
        "               entries=\"ghost_entries\"),")
    package = _write_tree(tmp_path, {
        "api/layers.py": layers,
        "api/engine.py": _ENGINE_OK,
        "service/snapshot.py": _SNAPSHOT_OK,
    })
    report = run_lint([package], rule_ids=["RL002"])
    messages = " | ".join(f.message for f in report.findings)
    assert "never creates it" in messages        # phantom attr
    assert "not an EngineStats field" in messages  # phantom counter


def test_rl002_fires_on_literal_snapshot_schema(tmp_path):
    package = _write_tree(tmp_path, {
        "api/layers.py": _LAYERS_OK,
        "api/engine.py": _ENGINE_OK,
        "service/snapshot.py": '_LAYERS = ("parsed",)\n',
    })
    report = run_lint([package], rule_ids=["RL002"])
    messages = " | ".join(f.message for f in report.findings)
    assert "import SNAPSHOT_LAYERS" in messages
    assert "duplicates the registry" in messages


def test_rl002_fires_when_export_ignores_registry(tmp_path):
    engine = _ENGINE_OK.replace(
        "        return {layer.name: getattr(self, layer.attr)\n"
        "                for layer in CACHE_LAYERS}",
        "        return {\"parsed\": self._parsed}")
    package = _write_tree(tmp_path, {
        "api/layers.py": _LAYERS_OK,
        "api/engine.py": engine,
        "service/snapshot.py": _SNAPSHOT_OK,
    })
    report = run_lint([package], rule_ids=["RL002"])
    assert any("export_caches" in f.message for f in report.findings)


# -- RL003: semiring conformance ---------------------------------------


_SEMIRING_BASE = """
class VectorizedOps:
    def encode(self): ...
    def decode(self): ...
    def add(self): ...
    def mul(self): ...
    def segment_add(self): ...


class SemiringProperties:
    def __init__(self, **kwargs): ...


class Semiring:
    pass
"""

_VECTORIZED_OK = """
from .base import VectorizedOps


class FullOps(VectorizedOps):
    def encode(self): ...
    def decode(self): ...
    def add(self): ...
    def mul(self): ...
    def segment_add(self): ...


class HalfOps(VectorizedOps):
    def encode(self): ...
    def decode(self): ...
"""

_TROPICAL_OK = """
from .base import Semiring, SemiringProperties


class GoodSemiring(Semiring):
    poly_order = "min-plus"
    properties = SemiringProperties(poly_order_decidable=True)

    def poly_leq(self, p1, p2):
        return True

    def vectorized_ops(self):
        try:
            from ._vectorized import FullOps
        except ImportError:
            return None
        return FullOps()
"""


def test_rl003_silent_on_coherent_semiring(tmp_path):
    package = _write_tree(tmp_path, {
        "semirings/base.py": _SEMIRING_BASE,
        "semirings/_vectorized.py": _VECTORIZED_OK,
        "semirings/tropical.py": _TROPICAL_OK,
    })
    report = run_lint([package], rule_ids=["RL003"])
    assert report.clean, report.findings


def test_rl003_fires_on_unknown_kind_and_missing_decidability(tmp_path):
    bad = """
from .base import Semiring, SemiringProperties


class TypoSemiring(Semiring):
    poly_order = "mid-plus"


class UndecidedSemiring(Semiring):
    poly_order = "min-plus"
    properties = SemiringProperties(poly_order_decidable=False)
"""
    package = _write_tree(tmp_path, {
        "semirings/base.py": _SEMIRING_BASE,
        "semirings/bad.py": bad,
    })
    report = run_lint([package], rule_ids=["RL003"])
    messages = " | ".join(f.message for f in report.findings)
    assert "mid-plus" in messages
    assert "poly_order_decidable=True" in messages
    assert "poly_leq" in messages  # UndecidedSemiring has no fallback


def test_rl003_fires_on_incomplete_kernel(tmp_path):
    tropical = _TROPICAL_OK.replace("FullOps", "HalfOps")
    package = _write_tree(tmp_path, {
        "semirings/base.py": _SEMIRING_BASE,
        "semirings/_vectorized.py": _VECTORIZED_OK,
        "semirings/tropical.py": tropical,
    })
    report = run_lint([package], rule_ids=["RL003"])
    assert len(report.findings) == 1
    message = report.findings[0].message
    assert "HalfOps" in message and "segment_add" in message


def test_rl003_fires_on_kernel_outside_vectorized_module(tmp_path):
    tropical = _TROPICAL_OK.replace(
        "from ._vectorized import FullOps", "FullOps = object")
    package = _write_tree(tmp_path, {
        "semirings/base.py": _SEMIRING_BASE,
        "semirings/_vectorized.py": _VECTORIZED_OK,
        "semirings/tropical.py": tropical,
    })
    report = run_lint([package], rule_ids=["RL003"])
    assert any("not imported from semirings/_vectorized"
               in f.message for f in report.findings)


# -- RL004: determinism hazards ----------------------------------------


def test_rl004_fires_on_each_hazard(tmp_path):
    package = _write_tree(tmp_path, {
        "service/routing.py": (
            "import hashlib\n\n\n"
            "def shard_of(key):\n"
            "    for item in {1, 2, 3}:\n"
            "        key += item\n"
            "    return id(key), hash(key), repr({4, 5})\n"),
    })
    report = run_lint([package], rule_ids=["RL004"])
    messages = " | ".join(f.message for f in report.findings)
    assert "id() is a per-process address" in messages
    assert "hash() is salted per process" in messages
    assert "repr() of a set" in messages
    assert "set iteration inside shard_of()" in messages


def test_rl004_silent_on_hash_memo_idiom(tmp_path):
    package = _write_tree(tmp_path, {
        "queries/cq.py": (
            "class CQ:\n"
            "    def __hash__(self):\n"
            "        return hash(self.atoms)\n\n"
            "    def precompute(self):\n"
            "        self._hash = hash(self.atoms)\n"
            "        object.__setattr__(self, \"_hash\",\n"
            "                           hash(self.atoms))\n\n"
            "    def walk(self):\n"
            "        for atom in sorted({1, 2}):\n"
            "            yield atom\n"),
    })
    report = run_lint([package], rule_ids=["RL004"])
    assert report.clean, report.findings


# -- RL005: pickle-boundary safety -------------------------------------


_SNAPSHOT_ALLOWLIST = """
class _RestrictedUnpickler:
    _ALLOWED_FUNCTIONS = frozenset({"_restore_cq"})
"""


def test_rl005_silent_on_allowlisted_restores(tmp_path):
    package = _write_tree(tmp_path, {
        "service/snapshot.py": _SNAPSHOT_ALLOWLIST,
        "queries/cq.py": (
            "def _restore_cq(head, atoms):\n"
            "    return CQ(head, atoms)\n\n\n"
            "class CQ:\n"
            "    @classmethod\n"
            "    def _from_canonical(cls, head, atoms):\n"
            "        return cls()\n\n"
            "    def __reduce__(self):\n"
            "        return (_restore_cq, (self.head, self.atoms))\n\n\n"
            "class Atom:\n"
            "    def __reduce__(self):\n"
            "        return (Atom, (1,))\n"),
    })
    report = run_lint([package], rule_ids=["RL005"])
    assert report.clean, report.findings


def test_rl005_fires_on_unlisted_restore_function(tmp_path):
    package = _write_tree(tmp_path, {
        "service/snapshot.py": _SNAPSHOT_ALLOWLIST,
        "queries/cq.py": (
            "def _restore_cq(x):\n"
            "    return x\n\n\n"
            "def _rogue(x):\n"
            "    return x\n\n\n"
            "class CQ:\n"
            "    def __reduce__(self):\n"
            "        return (_rogue, (1,))\n"),
    })
    report = run_lint([package], rule_ids=["RL005"])
    assert any("_rogue" in f.message and "allowlist" in f.message
               for f in report.findings)


def test_rl005_fires_on_fast_restore_without_reduce(tmp_path):
    package = _write_tree(tmp_path, {
        "service/snapshot.py": _SNAPSHOT_ALLOWLIST,
        "queries/cq.py": (
            "def _restore_cq(x):\n"
            "    return x\n\n\n"
            "class Orphan:\n"
            "    @classmethod\n"
            "    def _from_canonical(cls, x):\n"
            "        return cls()\n"),
    })
    report = run_lint([package], rule_ids=["RL005"])
    assert any("_from_canonical but no __reduce__" in f.message
               for f in report.findings)


def test_rl005_fires_on_ghost_allowlist_entry(tmp_path):
    package = _write_tree(tmp_path, {
        "service/snapshot.py": (
            "class _RestrictedUnpickler:\n"
            "    _ALLOWED_FUNCTIONS = frozenset({\"_never_defined\"})\n"),
    })
    report = run_lint([package], rule_ids=["RL005"])
    assert any("_never_defined" in f.message for f in report.findings)


# -- pragmas ------------------------------------------------------------


def test_trailing_pragma_suppresses_own_line(tmp_path):
    package = _write_tree(tmp_path, {
        "service/routing.py": (
            "def route(key):\n"
            "    return id(key)  # repro-lint: disable=RL004\n"),
    })
    report = run_lint([package], rule_ids=["RL004"])
    assert report.clean
    assert report.suppressed == 1


def test_comment_pragma_suppresses_next_line(tmp_path):
    package = _write_tree(tmp_path, {
        "service/routing.py": (
            "def route(key):\n"
            "    # in-process only.  # repro-lint: disable=RL004\n"
            "    return id(key)\n"),
    })
    report = run_lint([package], rule_ids=["RL004"])
    assert report.clean
    assert report.suppressed == 1


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    package = _write_tree(tmp_path, {
        "service/routing.py": (
            "def route(key):\n"
            "    return id(key)  # repro-lint: disable=RL001\n"),
    })
    report = run_lint([package], rule_ids=["RL004"])
    assert len(report.findings) == 1
    assert report.suppressed == 0


def test_disable_all_pragma(tmp_path):
    package = _write_tree(tmp_path, {
        "service/routing.py": (
            "def route(key):\n"
            "    return id(key)  # repro-lint: disable=all\n"),
    })
    report = run_lint([package], rule_ids=["RL004"])
    assert report.clean


# -- reporters, CLI, self-check ----------------------------------------


def test_syntax_error_becomes_rl000_finding(tmp_path):
    package = _write_tree(tmp_path, {"broken.py": "def nope(:\n"})
    report = run_lint([package])
    assert any(f.rule == "RL000" for f in report.findings)
    assert report.exit_code == 1


def test_json_reporter_schema(tmp_path):
    package = _write_tree(tmp_path, {
        "service/routing.py": "def route(key):\n    return id(key)\n",
    })
    report = run_lint([package], rule_ids=["RL004"])
    document = render_json(report)
    assert document["version"] == 1
    assert document["clean"] is False
    assert document["files"] == report.files
    assert document["suppressed"] == 0
    [finding] = document["findings"]
    assert set(finding) == {"rule", "path", "line", "message"}
    assert finding["rule"] == "RL004"
    assert finding["line"] == 2
    json.dumps(document)  # JSON-clean end to end


def test_cli_lint_exit_codes_and_json(tmp_path, capsys):
    package = _write_tree(tmp_path, {
        "service/routing.py": "def route(key):\n    return id(key)\n",
    })
    assert main(["lint", "--json", str(package)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    clean = _write_tree(tmp_path / "ok", {"fine.py": "VALUE = 1\n"})
    assert main(["lint", str(clean)]) == 0
    assert "clean" in capsys.readouterr().out


def test_repo_tree_lints_clean():
    """The repository's own package must pass its own linter —
    exactly what the CI gate (`python -m repro lint`) enforces."""
    report = run_lint()  # defaults to the installed repro package
    assert report.clean, "\n".join(f.render() for f in report.findings)
