"""Tests for the interprocedural flow rules (RL101–RL104).

Same shape as ``test_lint.py``: every rule gets fixture trees it must
fire on and the clean idiom it must stay silent on, written as
miniature ``repro`` package trees under ``tmp_path`` (the linter never
imports them).  On top of the per-rule pairs: pragma interplay with
the RL1xx rules, ``--select``/``--ignore`` pattern filtering, the
``--stats`` timing summary, and the self-check that the repository's
own tree passes its own flow rules.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (match_rule, render_json, render_text, run_lint,
                        select_rules)


def _write_tree(root: Path, files: dict[str, str]) -> Path:
    """Materialize a mini ``repro`` package tree; returns its root."""
    package = root / "repro"
    for relative, text in files.items():
        path = package / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        current = path.parent
        while current != root:
            init = current / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
            current = current.parent
    return package


# -- RL101: async-blocking ---------------------------------------------


_HELPER = """
import pickle


def save(payload):
    with open("/tmp/s", "wb") as fh:
        pickle.dump(payload, fh)


def flush_state():
    save(None)
"""

_GATEWAY = """
import asyncio
import pickle

from .helper import flush_state, save


class Gateway:
    async def handle(self, payload):
        save(payload)
        pickle.dump(payload, open("/tmp/x", "wb"))
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, flush_state)
"""


def test_rl101_fires_on_direct_and_transitive_blocking(tmp_path):
    package = _write_tree(tmp_path, {
        "service/helper.py": _HELPER,
        "service/gateway.py": _GATEWAY,
    })
    report = run_lint([package], select=["RL101"])
    messages = sorted(f.message for f in report.findings)
    # three: the transitive chain, plus pickle.dump() and open()
    # called directly inside the coroutine
    assert len(messages) == 3, messages
    # transitive: handle -> save -> pickle.dump, with the chain shown
    assert any("calls save()" in m and "save -> pickle.dump()" in m
               for m in messages)
    # direct: pickle.dump and open right inside the coroutine
    assert any("pickle.dump()" in m and "calls save()" not in m
               for m in messages)
    assert any("open()" in m for m in messages)
    # the executor *reference* to flush_state is not a call edge
    assert not any("flush_state" in m for m in messages)


def test_rl101_silent_on_sync_callers_and_executor_reference(tmp_path):
    package = _write_tree(tmp_path, {
        "service/helper.py": _HELPER,
        "service/runner.py": (
            "import asyncio\n\n"
            "from .helper import save\n\n\n"
            "def cold_path(payload):\n"
            "    save(payload)\n\n\n"
            "async def warm_path(payload):\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, save, payload)\n"),
    })
    report = run_lint([package], select=["RL101"])
    assert report.clean, [f.message for f in report.findings]


def test_rl101_fires_on_hom_search_reachable_from_async(tmp_path):
    package = _write_tree(tmp_path, {
        "homomorphisms/search.py": (
            "def find_homomorphism(q1, q2):\n"
            "    return None\n"),
        "service/api.py": (
            "from ..homomorphisms.search import find_homomorphism\n\n\n"
            "async def contains(q1, q2):\n"
            "    return find_homomorphism(q1, q2) is not None\n"),
    })
    report = run_lint([package], select=["RL101"])
    [finding] = report.findings
    assert "find_homomorphism" in finding.message
    assert finding.path.endswith("api.py")


def test_rl101_trailing_pragma_suppresses(tmp_path):
    package = _write_tree(tmp_path, {
        "service/helper.py": _HELPER,
        "service/gateway.py": (
            "from .helper import save\n\n\n"
            "async def handle(payload):\n"
            "    save(payload)  # repro-lint: disable=RL101\n"),
    })
    report = run_lint([package], select=["RL101"])
    assert report.clean
    assert report.suppressed == 1


# -- RL102: fork safety ------------------------------------------------


_FORKY = """
import multiprocessing
import socket
import threading


class Server:
    def __init__(self):
        self._listen = socket.socket()
        self._lock = threading.Lock()
        self._q = multiprocessing.SimpleQueue()

    def start(self):
        proc = multiprocessing.Process(target=self._child,
                                       args=(self._q,))
        proc.start()

    def _child(self, q):
        self._listen.accept()
        q.put("ready")
"""


def test_rl102_fires_on_inherited_socket(tmp_path):
    # the PR-8 class of bug: a listening socket created pre-fork is
    # still open inside the worker
    package = _write_tree(tmp_path, {"service/forky.py": _FORKY})
    report = run_lint([package], select=["RL102"])
    [finding] = report.findings
    assert "self._listen" in finding.message
    assert "pre-fork" in finding.message
    # the unused lock and the multiprocessing queue stay silent
    assert "_lock" not in finding.message


def test_rl102_fires_on_risky_args_and_module_global(tmp_path):
    package = _write_tree(tmp_path, {
        "service/forky.py": _FORKY.replace(
            "args=(self._q,)", "args=(self._lock,)"),
        "service/global_sock.py": (
            "import multiprocessing\n"
            "import socket\n\n"
            "LISTENER = socket.socket()\n\n\n"
            "def worker():\n"
            "    LISTENER.accept()\n\n\n"
            "def start():\n"
            "    multiprocessing.Process(target=worker).start()\n"),
    })
    report = run_lint([package], select=["RL102"])
    messages = " | ".join(f.message for f in report.findings)
    assert "self._lock via args=" in messages
    assert "module global 'LISTENER'" in messages


def test_rl102_silent_on_post_fork_creation(tmp_path):
    package = _write_tree(tmp_path, {
        "service/forky.py": _FORKY.replace(
            "        self._listen.accept()\n",
            "        import socket as sock\n"
            "        listen = sock.socket()\n"
            "        listen.accept()\n"),
    })
    report = run_lint([package], select=["RL102"])
    assert report.clean, [f.message for f in report.findings]


# -- RL103: shared-state ownership -------------------------------------


_OWNED = """
from collections import deque


class Pool:
    def __init__(self):
        self._home = deque()  # repro-lint: owner=submit,_pump

    def submit(self, item):
        self._home.append(item)

    def _pump(self):
        return self._home.popleft()

    def rogue(self):
        self._home.clear()

    def sneaky(self, index):
        home = self._home
        home.append(index)
"""


def test_rl103_fires_on_rogue_and_alias_mutation(tmp_path):
    package = _write_tree(tmp_path, {"service/owned.py": _OWNED})
    report = run_lint([package], select=["RL103"])
    messages = sorted(f.message for f in report.findings)
    assert len(messages) == 2, messages
    assert any("'rogue'" in m for m in messages)
    assert any("'sneaky'" in m for m in messages)  # via the local alias
    assert all("Pool._home" in m for m in messages)


def test_rl103_silent_for_owners_and_copies(tmp_path):
    clean = _OWNED.replace(
        "    def rogue(self):\n"
        "        self._home.clear()\n",
        "    def report(self):\n"
        "        snapshot = list(self._home)\n"
        "        snapshot.append(None)  # a copy, not the container\n",
    ).replace(
        "    def sneaky(self, index):\n"
        "        home = self._home\n"
        "        home.append(index)\n",
        "",
    )
    package = _write_tree(tmp_path, {"service/owned.py": clean})
    report = run_lint([package], select=["RL103"])
    assert report.clean, [f.message for f in report.findings]


def test_rl103_subclass_mutation_checked_through_mro(tmp_path):
    package = _write_tree(tmp_path, {
        "service/owned.py": _OWNED.replace(
            "    def rogue(self):\n"
            "        self._home.clear()\n",
            "",
        ).replace(
            "    def sneaky(self, index):\n"
            "        home = self._home\n"
            "        home.append(index)\n",
            "",
        ),
        "service/sub.py": (
            "from .owned import Pool\n\n\n"
            "class Supervisor(Pool):\n"
            "    def steal(self):\n"
            "        return self._home.pop()\n"),
    })
    report = run_lint([package], select=["RL103"])
    [finding] = report.findings
    assert "'steal'" in finding.message
    assert finding.path.endswith("sub.py")
    # adding the subclass method as a qualified owner silences it
    fixed = _write_tree(tmp_path / "ok", {
        "service/owned.py": _OWNED.replace(
            "owner=submit,_pump", "owner=submit,_pump,Supervisor.steal",
        ).replace(
            "    def rogue(self):\n        self._home.clear()\n", "",
        ).replace(
            "    def sneaky(self, index):\n"
            "        home = self._home\n"
            "        home.append(index)\n",
            "",
        ),
        "service/sub.py": (
            "from .owned import Pool\n\n\n"
            "class Supervisor(Pool):\n"
            "    def steal(self):\n"
            "        return self._home.pop()\n"),
    })
    assert run_lint([fixed], select=["RL103"]).clean


def test_rl103_comment_above_declares_ownership(tmp_path):
    package = _write_tree(tmp_path, {
        "service/owned.py": _OWNED.replace(
            "        self._home = deque()  # repro-lint: owner=submit,_pump\n",
            "        # repro-lint: owner=submit,_pump\n"
            "        self._home = deque()\n"),
    })
    report = run_lint([package], select=["RL103"])
    # same two violations as the trailing-comment form (declaration
    # line shifts by one, so compare the flagged methods, not text)
    messages = sorted(f.message for f in report.findings)
    assert len(messages) == 2, messages
    assert any("'rogue'" in m for m in messages)
    assert any("'sneaky'" in m for m in messages)


# -- RL104: cache-key completeness -------------------------------------


_MEMO = """
class _LRU:
    def __init__(self, size):
        self._size = size

    def get(self, key, default):
        return default

    def put(self, key, value):
        pass


def build_plan(query, mode):
    return (query, mode)


class Engine:
    def __init__(self):
        self._plans = _LRU(8)

    def plan(self, query, context):
        hit = self._plans.get(query, None)
        if hit is not None:
            return hit
        plan = build_plan(query, context.mode)
        self._plans.put(query, plan)
        return plan
"""


def test_rl104_fires_on_context_dropped_from_key(tmp_path):
    package = _write_tree(tmp_path, {"api/memo.py": _MEMO})
    report = run_lint([package], select=["RL104"])
    [finding] = report.findings
    assert "'context'" in finding.message
    assert "self._plans" in finding.message
    assert "alias one cache entry" in finding.message


def test_rl104_silent_on_complete_key(tmp_path):
    package = _write_tree(tmp_path, {
        "api/memo.py": _MEMO.replace(
            "self._plans.put(query, plan)",
            "self._plans.put((query, context.mode), plan)"),
    })
    report = run_lint([package], select=["RL104"])
    assert report.clean, [f.message for f in report.findings]


def test_rl104_skips_lru_cache_decorated(tmp_path):
    package = _write_tree(tmp_path, {
        "api/memo.py": _MEMO.replace(
            "    def plan(self, query, context):",
            "    @lru_cache(maxsize=None)\n"
            "    def plan(self, query, context):"),
    })
    report = run_lint([package], select=["RL104"])
    assert report.clean, [f.message for f in report.findings]


def test_rl104_pragma_with_justification(tmp_path):
    package = _write_tree(tmp_path, {
        "api/memo.py": _MEMO.replace(
            "self._plans.put(query, plan)",
            "self._plans.put(query, plan)  # repro-lint: disable=RL104"),
    })
    report = run_lint([package], select=["RL104"])
    assert report.clean
    assert report.suppressed == 1


_LAYERS = """
class CacheLayer:
    pass


CACHE_LAYERS = (
    CacheLayer(name="parsed", attr="_parsed", hits="parse_hits",
               calls="parse_calls", entries="parsed_entries"),
    CacheLayer(name="plans", attr="_plans", hits="plan_hits",
               calls="plan_calls", entries="plan_entries"),
)
"""

_LAYER_ENGINE = """
class _LRU:
    pass


class ContainmentEngine:
    def __init__(self):
        self._parsed = _LRU()
        self._plans = _LRU()

    def parse(self, text, dialect):
        parsed = (text, dialect)
        self._parsed[text] = parsed
        return parsed
"""


def test_rl104_checks_registry_layers_of_the_engine(tmp_path):
    package = _write_tree(tmp_path, {
        "api/layers.py": _LAYERS,
        "api/engine.py": _LAYER_ENGINE,
    })
    report = run_lint([package], select=["RL104"])
    messages = " | ".join(f.message for f in report.findings)
    # the subscript store keys on text but the value depends on dialect
    assert "layer 'parsed'" in messages
    assert "'dialect'" in messages
    # a declared layer with no write site anywhere can never fill
    assert "layer 'plans'" in messages
    assert "never fill" in messages


# -- rule filtering and stats ------------------------------------------


def test_match_rule_patterns():
    assert match_rule("RL104", "RL104")
    assert match_rule("RL104", "all")
    assert match_rule("RL104", "RL1*")
    assert match_rule("RL104", "RL1XX")
    assert match_rule("RL104", "RLx04")
    assert not match_rule("RL004", "RL1XX")
    assert not match_rule("RL104", "RL10")     # length mismatch
    assert not match_rule("RL104", "RL0*")


def test_select_rules_rejects_dead_patterns():
    with pytest.raises(ValueError, match="RL9XX"):
        select_rules(select=["RL9XX"], ignore=None)
    with pytest.raises(ValueError, match="matches no registered"):
        select_rules(select=None, ignore=["RL7*"])


def test_run_lint_select_and_ignore_compose(tmp_path):
    package = _write_tree(tmp_path, {
        "service/helper.py": _HELPER,
        "service/gateway.py": _GATEWAY,
        "service/owned.py": _OWNED,
    })
    both = run_lint([package], select=["RL1XX"])
    assert {f.rule for f in both.findings} == {"RL101", "RL103"}
    only_async = run_lint([package], select=["RL1XX"], ignore=["RL103"])
    assert {f.rule for f in only_async.findings} == {"RL101"}


def test_stats_timings_in_text_and_json(tmp_path):
    package = _write_tree(tmp_path, {"service/owned.py": _OWNED})
    report = run_lint([package], select=["RL103"], with_stats=True)
    assert [rule for rule, _ in report.timings] == ["RL103"]
    assert all(elapsed >= 0.0 for _, elapsed in report.timings)
    text = render_text(report, stats=True)
    assert "rule timings" in text and "RL103" in text
    document = render_json(report)
    assert document["version"] == 1
    assert set(document["timings"]) == {"RL103"}
    json.dumps(document)
    # without stats the JSON schema is unchanged
    plain = run_lint([package], select=["RL103"])
    assert "timings" not in render_json(plain)


def test_cli_select_ignore_stats_flags(tmp_path, capsys):
    package = _write_tree(tmp_path, {"service/owned.py": _OWNED})
    assert main(["lint", "--select", "RL103", "--stats",
                 str(package)]) == 1
    out = capsys.readouterr().out
    assert "RL103" in out and "rule timings" in out
    assert main(["lint", "--ignore", "RL103", str(package)]) == 0
    capsys.readouterr()
    assert main(["lint", "--select", "RL9XX", str(package)]) == 2
    assert "matches no registered rule" in capsys.readouterr().err


# -- self-check --------------------------------------------------------


def test_repo_tree_passes_flow_rules():
    """The repository's own package must pass RL101–RL104 — exactly
    what the CI gate (`python -m repro lint`) enforces."""
    report = run_lint(select=["RL1XX"])
    assert report.clean, "\n".join(f.render() for f in report.findings)
