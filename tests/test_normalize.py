"""Normal forms: equivalent queries normalize identically (Chom)."""

from __future__ import annotations

import random

import pytest

from repro.core import k_equivalent
from repro.homomorphisms.isomorphism import canonical_rename
from repro.optimize.normalize import normalize_cq, normalize_ucq
from repro.queries import UCQ, parse_cq, parse_ucq
from repro.queries.generators import random_cq
from repro.semirings import B, LIN, NX


def test_canonical_rename_equalizes_isomorphic():
    a = parse_cq("Q(x) :- R(x, y), S(y)")
    b = parse_cq("Q(x) :- R(x, w), S(w)")
    assert a != b
    assert canonical_rename(a) == canonical_rename(b)


def test_canonical_rename_preserves_head():
    q = parse_cq("Q(x) :- R(x, y)")
    renamed = canonical_rename(q)
    assert renamed.head == q.head


def test_normalize_cq_b():
    messy = parse_cq("Q(x) :- R(x, u), R(x, v), R(x, w)")
    tidy = parse_cq("Q(x) :- R(x, z)")
    assert normalize_cq(messy, B) == normalize_cq(tidy, B)


def test_normalize_preserves_equivalence():
    rng = random.Random(404)
    for semiring in (B, LIN, NX):
        for _ in range(8):
            query = random_cq(rng, max_atoms=3, max_vars=3, head_arity=1)
            normal = normalize_cq(query, semiring)
            assert k_equivalent(query, normal, semiring).result is True


def test_normalize_ucq_chom_is_canonical():
    """B-equivalent unions collapse to the same literal UCQ."""
    u1 = parse_ucq([
        "Q(x) :- R(x, y)",
        "Q(x) :- R(x, y), R(x, z)",      # subsumed
        "Q(x) :- R(x, x)",               # subsumed by R(x, y)
    ])
    u2 = parse_ucq(["Q(x) :- R(x, w)"])
    assert normalize_ucq(u1, B) == normalize_ucq(u2, B)


def test_normalize_ucq_respects_multiplicity_over_nx():
    q = parse_cq("Q() :- R(u, u)")
    doubled = UCQ((q, q))
    assert len(normalize_ucq(doubled, NX)) == 2
    assert len(normalize_ucq(doubled, B)) == 1


def test_normalize_idempotent():
    u = parse_ucq(["Q(x) :- R(x, y), R(x, z)", "Q(x) :- S(x), S(x)"])
    for semiring in (B, LIN, NX):
        once = normalize_ucq(u, semiring)
        twice = normalize_ucq(once, semiring)
        assert once == twice, semiring.name
