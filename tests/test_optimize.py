"""Semiring-aware minimization and redundancy elimination —
the paper's query-optimization motivation made executable."""

from __future__ import annotations

import pytest

from repro.optimize import eliminate_redundant_members, minimize_cq
from repro.queries import UCQ, parse_cq, parse_ucq
from repro.queries.evaluation import evaluate
from repro.data import Instance
from repro.semirings import B, BX, LIN, N, NX, TPLUS, WHY


def test_core_minimization_under_set_semantics():
    q = parse_cq("Q(x) :- R(x, y), R(x, z)")
    result = minimize_cq(q, B)
    assert result.removed == 1
    assert len(result.query.atoms) == 1
    assert not result.minimal
    assert result.steps[0] == q


def test_no_minimization_under_provenance():
    q = parse_cq("Q(x) :- R(x, y), R(x, z)")
    result = minimize_cq(q, NX)
    assert result.minimal
    assert result.query == q


def test_lineage_minimization_between_extremes():
    """Over Lin[X], R(x,y),R(x,z) ⇉-covers R(x,y) and vice versa, so the
    self-join IS redundant; but a genuinely informative atom is not."""
    q = parse_cq("Q(x) :- R(x, y), R(x, z)")
    assert minimize_cq(q, LIN).removed == 1
    q_rs = parse_cq("Q(x) :- R(x, y), S(x)")
    assert minimize_cq(q_rs, LIN).minimal


def test_tropical_minimization_keeps_cost_structure():
    """T+ is not ⊗-idempotent: the duplicated join doubles the cost
    (2·min ≠ min), so — unlike set semantics — nothing is removed."""
    q = parse_cq("Q(x) :- R(x, y), R(x, z)")
    assert minimize_cq(q, TPLUS).minimal


def test_bag_minimization_is_conservative():
    """Under N the equivalence is undecided for the collapse pair, so
    minimization must keep the atoms (sound, conservative)."""
    q = parse_cq("Q(x) :- R(x, y), R(x, z)")
    result = minimize_cq(q, N)
    assert result.minimal


def test_minimization_preserves_semantics():
    q = parse_cq("Q(x) :- R(x, y), R(x, z), R(x, x)")
    minimized = minimize_cq(q, B).query
    instance = Instance(B, {"R": {("a", "a"): True, ("a", "b"): True,
                                  ("b", "a"): True}})
    for target in [("a",), ("b",), ("c",)]:
        assert evaluate(q, instance, target) == evaluate(
            minimized, instance, target)


def test_head_variables_protected():
    q = parse_cq("Q(x, y) :- R(x, y), R(x, x)")
    result = minimize_cq(q, B)
    # the R(x,y) atom binds y and must survive
    assert any(v.name == "y"
               for atom in result.query.atoms for v in atom.variables())


# --- UCQ redundancy ---------------------------------------------------------

def test_redundant_member_dropped_under_b():
    u = parse_ucq(["Q() :- R(x, y)", "Q() :- R(x, x)"])
    result = eliminate_redundant_members(u, B)
    assert len(result.query) == 1
    assert result.removed
    # the specialized member R(x,x) is subsumed by R(x,y)
    assert result.query.cqs[0] == parse_cq("Q() :- R(x, y)")


def test_duplicates_dropped_only_with_idempotence():
    q = parse_cq("Q() :- R(x, x)")
    u = UCQ((q, q))
    assert len(eliminate_redundant_members(u, BX).query) == 1
    assert len(eliminate_redundant_members(u, NX).query) == 2


def test_why_redundancy():
    u = parse_ucq(["Q() :- R(x, y)", "Q() :- R(x, y), R(x, y)"])
    result = eliminate_redundant_members(u, WHY)
    assert len(result.query) == 1


def test_bag_redundancy_conservative():
    u = parse_ucq(["Q() :- R(x, y)", "Q() :- R(x, x)"])
    result = eliminate_redundant_members(u, N)
    assert result.minimal  # undecided equivalences keep members


def test_redundancy_result_minimal_flag():
    u = parse_ucq(["Q() :- R(x, y)"])
    assert eliminate_redundant_members(u, B).minimal
