"""The brute-force oracle and the Verdict type."""

from __future__ import annotations

import random

import pytest

from repro.core import Undecided, Verdict
from repro.oracle import Counterexample, find_counterexample, refutes
from repro.queries import UCQ, evaluate, parse_cq, parse_ucq
from repro.semirings import B, N, NX, SORP, TPLUS


# --- oracle -------------------------------------------------------------

def test_finds_counterexample_for_bag_noncontainment():
    q1 = parse_cq("Q() :- R(u, u), R(u, u)")
    q2 = parse_cq("Q() :- R(u, u)")
    witness = find_counterexample(q1, q2, N)
    assert witness is not None
    # the witness is checkable: evaluating confirms the violation
    lhs = evaluate(q1, witness.instance, witness.target)
    rhs = evaluate(q2, witness.instance, witness.target)
    assert not N.leq(lhs, rhs)
    assert lhs == witness.lhs and rhs == witness.rhs


def test_silent_on_containment():
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v)")
    assert find_counterexample(q1, q2, B) is None
    assert not refutes(q1, q2, B)


def test_empty_union_never_refuted():
    q2 = parse_ucq(["Q() :- R(u, u)"])
    assert find_counterexample(UCQ(()), q2, N) is None


def test_generic_valuation_catches_sorp_violations():
    """The Nin witness needs all-distinct tags: the generic valuation
    pass finds it even with a tiny sample pool."""
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")
    witness = find_counterexample(q1, q2, SORP, pool_size=2, budget=1,
                                  random_rounds=0)
    assert witness is not None
    assert witness.source.startswith("canonical")


def test_counterexample_repr():
    q1 = parse_cq("Q() :- R(u, u), R(u, u)")
    q2 = parse_cq("Q() :- R(u, u)")
    witness = find_counterexample(q1, q2, N)
    assert "⋠" in repr(witness)


def test_random_search_fallback():
    """With the canonical budget starved, the random phase still finds
    simple violations."""
    q1 = parse_cq("Q() :- R(u, u), R(u, u)")
    q2 = parse_cq("Q() :- R(u, u)")
    witness = find_counterexample(q1, q2, N, rng=random.Random(1),
                                  pool_size=2, budget=0, random_rounds=60)
    assert witness is not None


# --- Verdict --------------------------------------------------------------

def test_verdict_unwrap():
    assert Verdict(True, "m").unwrap() is True
    assert Verdict(False, "m").unwrap() is False
    with pytest.raises(Undecided):
        Verdict(None, "bounds-only").unwrap()


def test_verdict_decided_flag():
    assert Verdict(True, "m").decided
    assert not Verdict(None, "m").decided


def test_verdict_refuses_boolean_coercion():
    with pytest.raises(TypeError):
        bool(Verdict(True, "m"))


def test_verdict_is_frozen():
    verdict = Verdict(True, "m")
    with pytest.raises(Exception):
        verdict.result = False
