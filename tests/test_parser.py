"""The Datalog-style query parser."""

from __future__ import annotations

import pytest

from repro.queries import (CQ, Atom, CQWithInequalities, ParseError, Var,
                           parse_cq, parse_ucq)


def test_parse_simple():
    q = parse_cq("Q(x) :- R(x, y), S(y)")
    assert q.head == (Var("x"),)
    assert set(q.atoms) == {Atom("R", (Var("x"), Var("y"))),
                            Atom("S", (Var("y"),))}
    assert not isinstance(q, CQWithInequalities)


def test_parse_boolean_query():
    q = parse_cq("Q() :- R(x, x)")
    assert q.arity == 0
    assert q.atoms == (Atom("R", (Var("x"), Var("x"))),)


def test_parse_constants():
    q = parse_cq("Q(x) :- R(x, 'berlin'), S(7)")
    assert Atom("R", (Var("x"), "berlin")) in q.atoms
    assert Atom("S", (7,)) in q.atoms


def test_parse_negative_number():
    q = parse_cq("Q() :- S(-3), S(x)")
    assert Atom("S", (-3,)) in q.atoms


def test_parse_inequalities():
    q = parse_cq("Q() :- R(u, v), R(u, w), u != v, v != w")
    assert isinstance(q, CQWithInequalities)
    assert frozenset((Var("u"), Var("v"))) in q.inequalities
    assert len(q.inequalities) == 2


def test_parse_duplicate_atoms_kept():
    q = parse_cq("Q() :- R(x, y), R(x, y)")
    assert len(q.atoms) == 2


def test_parse_ucq():
    u = parse_ucq(["Q(x) :- R(x, x)", "Q(y) :- S(y)"])
    assert len(u) == 2
    assert u.arity == 1


def test_parse_whitespace_robust():
    q = parse_cq("  Q( x )  :-   R( x ,  y ) ")
    assert q.head == (Var("x"),)


@pytest.mark.parametrize("text", [
    "Q(x)",                       # no body
    "Q(x) :- ",                   # empty body
    "Q(x) :- R(x,",               # unclosed paren
    "(x) :- R(x)",                # missing head name
    "Q(x) :- R(x) extra",         # trailing garbage
    "Q('c') :- R(x)",             # constant in head
    "Q(x) :- x != 3",             # inequality with constant
    "Q(x) :- R(x) ;",             # untokenizable character
])
def test_parse_errors(text):
    with pytest.raises(ParseError):
        parse_cq(text)


def test_roundtrip_through_repr_style():
    """parse(text) equals the manually constructed query."""
    manual = CQ((Var("x"),),
                (Atom("R", (Var("x"), Var("y"))), Atom("S", (Var("y"),))))
    assert parse_cq("Q(x) :- R(x, y), S(y)") == manual
