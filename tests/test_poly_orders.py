"""Polynomial-order decisions beyond the tropical pair.

``Lin[X]``, ``Sorp[X]``, ``PosBool[X]``, ``B``, the finite lattices and
Viterbi all implement ``poly_leq``, which gives them a *second*,
independent decision procedure (the small model, Thm. 4.17).  These
tests check the order decisions directly and the agreement of the two
procedures — the strongest internal-consistency evidence the library
has.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (decide_cq_containment, decide_ucq_containment,
                        small_model_contained)
from repro.polynomials import Polynomial
from repro.queries.generators import random_cq, random_ucq
from repro.semirings import (ACCESS, B, EVENTS, FUZZY, LIN, POSBOOL, SORP,
                             VITERBI, N2_SATURATING)


def poly(terms):
    return Polynomial.parse_terms(terms)


# --- direct order checks ---------------------------------------------------

def test_lin_poly_order():
    # x ≼ x + y (more lineage) and x·y = x + y in Lin: products are unions.
    assert LIN.poly_leq(poly([(1, "x")]), poly([(1, "x"), (1, "y")]))
    assert LIN.poly_leq(poly([(1, "xy")]), poly([(1, "x"), (1, "y")]))
    # the converse fails: y ↦ ⊥ kills the product but not the sum.
    assert not LIN.poly_leq(poly([(1, "x"), (1, "y")]), poly([(1, "xy")]))
    # and xy ⋠ x alone: y ↦ • gives lineage on the left only.
    assert not LIN.poly_leq(poly([(1, "xy")]), poly([(1, "x")]))


def test_lin_poly_order_bottom_patterns():
    """x ≼ xy fails: valuating y ↦ ⊥ kills the right side."""
    assert not LIN.poly_leq(poly([(1, "x")]), poly([(1, "xy")]))
    assert LIN.poly_leq(Polynomial.zero(), poly([(1, "x")]))
    assert not LIN.poly_leq(poly([(1, "x")]), Polynomial.zero())


def test_sorp_poly_order_divisibility():
    # x² ≼ x (x divides x²: absorption), but x ⋠ x².
    assert SORP.poly_leq(poly([(1, "xx")]), poly([(1, "x")]))
    assert not SORP.poly_leq(poly([(1, "x")]), poly([(1, "xx")]))
    # coefficients are absorbed entirely.
    assert SORP.poly_leq(poly([(3, "xy")]), poly([(1, "xy")]))


def test_posbool_poly_order_lattice():
    assert POSBOOL.poly_leq(poly([(1, "xy")]), poly([(1, "x")]))
    assert not POSBOOL.poly_leq(poly([(1, "x")]), poly([(1, "xy")]))
    assert POSBOOL.poly_leq(poly([(1, "x")]), poly([(1, "x"), (1, "y")]))


def test_viterbi_poly_order_matches_tropical_example():
    left = poly([(1, "xx"), (2, "xy"), (1, "yy")])
    right = poly([(1, "xx"), (1, "yy")])
    assert VITERBI.poly_leq(left, right)
    assert VITERBI.poly_leq(right, left)


def test_finite_semiring_poly_orders():
    x_square = poly([(1, "xx")])
    x = poly([(1, "x")])
    # ⊗-idempotent lattices: x² = x.
    for semiring in (B, FUZZY, EVENTS, ACCESS):
        assert semiring.poly_leq(x_square, x), semiring.name
        assert semiring.poly_leq(x, x_square), semiring.name
    # saturating N₂: x² = x numerically on {0,1,2} as well.
    assert N2_SATURATING.poly_leq(x_square, x)
    assert N2_SATURATING.poly_leq(x, x_square)
    # but 2x ≠ x over N₂ (offset 2, not ⊕-idempotent):
    assert not N2_SATURATING.poly_leq(poly([(2, "x")]), x)


# --- the two independent procedures agree ----------------------------------

@pytest.mark.parametrize("semiring", [B, POSBOOL, LIN, SORP],
                         ids=lambda s: s.name)
def test_small_model_agrees_with_hom_procedure_cq(semiring):
    rng = random.Random(314)
    for _ in range(20):
        q1 = random_cq(rng, max_atoms=3, max_vars=3)
        q2 = random_cq(rng, max_atoms=3, max_vars=3)
        by_class = decide_cq_containment(q1, q2, semiring).result
        by_model = small_model_contained(q1, q2, semiring)
        assert by_class == by_model, (semiring.name, q1, q2)


@pytest.mark.parametrize("semiring", [B, LIN, SORP],
                         ids=lambda s: s.name)
def test_small_model_agrees_with_hom_procedure_ucq(semiring):
    rng = random.Random(2718)
    for _ in range(10):
        q1 = random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
        q2 = random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
        by_class = decide_ucq_containment(q1, q2, semiring).result
        by_model = small_model_contained(q1, q2, semiring)
        assert by_class == by_model, (semiring.name, q1, q2)
