"""Monomial / Polynomial arithmetic and the natural order of N[X]."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polynomials import Monomial, Polynomial
from repro.polynomials.polynomial import polynomial_product, polynomial_sum

VARS = ("x", "y", "z")

monomials = st.builds(
    Monomial.from_variables,
    st.lists(st.sampled_from(VARS), min_size=0, max_size=4),
)
polynomials = st.builds(
    Polynomial,
    st.lists(st.tuples(monomials, st.integers(min_value=1, max_value=3)),
             min_size=0, max_size=4),
)


# --- Monomial ---------------------------------------------------------

def test_monomial_construction_merges_exponents():
    m = Monomial((("x", 1), ("x", 2), ("y", 1)))
    assert m.exponent("x") == 3
    assert m.exponent("y") == 1
    assert m.exponent("w") == 0
    assert m.degree() == 4


def test_monomial_unit():
    assert Monomial.unit().is_unit()
    assert Monomial.unit().degree() == 0
    assert Monomial.variable("x").mul(Monomial.unit()) == Monomial.variable("x")


def test_monomial_rejects_negative_exponent():
    with pytest.raises(ValueError):
        Monomial((("x", -1),))


def test_monomial_divides():
    x, xy = Monomial.from_variables("x"), Monomial.from_variables("xy")
    x2 = Monomial.from_variables("xx")
    assert x.divides(xy) and x.divides(x2)
    assert not x2.divides(xy)
    assert x.strictly_divides(x2)
    assert not x.strictly_divides(x)


def test_monomial_word_and_support():
    m = Monomial((("y", 2), ("x", 1)))
    assert m.as_word() == ("x", "y", "y")
    assert m.support_monomial() == Monomial.from_variables("xy")
    assert m.is_squarefree() is False
    assert m.support_monomial().is_squarefree()


@given(monomials, monomials)
def test_monomial_mul_commutative(a, b):
    assert a.mul(b) == b.mul(a)


@given(monomials, monomials, monomials)
def test_monomial_mul_associative(a, b, c):
    assert a.mul(b).mul(c) == a.mul(b.mul(c))


# --- Polynomial -------------------------------------------------------

def test_polynomial_parse_terms():
    p = Polynomial.parse_terms([(1, "xx"), (2, "xy"), (1, "yy")])
    assert p.coefficient(Monomial.from_variables("xy")) == 2
    assert p.term_count() == 3
    assert p.total_multiplicity() == 4
    assert p.degree() == 2
    assert p.is_homogeneous()


def test_polynomial_zero_and_one():
    assert Polynomial.zero().is_zero()
    assert Polynomial.one().constant_term() == 1
    assert Polynomial.constant(0).is_zero()
    assert Polynomial.constant(3).constant_term() == 3


def test_polynomial_rejects_negative_coefficients():
    with pytest.raises(ValueError):
        Polynomial(((Monomial.variable("x"), -1),))
    with pytest.raises(ValueError):
        Polynomial.variable("x").scale(-2)


def test_polynomial_add_mul():
    x, y = Polynomial.variable("x"), Polynomial.variable("y")
    assert (x + y) * (x + y) == Polynomial.parse_terms(
        [(1, "xx"), (2, "xy"), (1, "yy")])
    assert (x + y).power(0) == Polynomial.one()
    assert x.scale(0).is_zero()


def test_polynomial_not_homogeneous():
    p = Polynomial.parse_terms([(1, "xx"), (1, "y")])
    assert not p.is_homogeneous()


def test_natural_leq():
    small = Polynomial.parse_terms([(1, "xy")])
    large = Polynomial.parse_terms([(2, "xy"), (1, "x")])
    assert small.natural_leq(large)
    assert not large.natural_leq(small)
    assert Polynomial.zero().natural_leq(small)


@given(polynomials, polynomials)
@settings(max_examples=60)
def test_polynomial_add_commutative(p, q):
    assert p + q == q + p


@given(polynomials, polynomials, polynomials)
@settings(max_examples=60)
def test_polynomial_distributive(p, q, r):
    assert p * (q + r) == p * q + p * r


@given(polynomials)
@settings(max_examples=60)
def test_natural_leq_reflexive_and_additive(p):
    assert p.natural_leq(p)
    assert p.natural_leq(p + Polynomial.variable("x"))


@given(polynomials, polynomials)
@settings(max_examples=60)
def test_natural_leq_is_sum_existence(p, q):
    """P ≼ Q iff some R has P + R = Q (here: the coefficient gap)."""
    if p.natural_leq(q):
        gap = Polynomial(
            (mono, q.coefficient(mono) - p.coefficient(mono))
            for mono, _ in q.items()
        )
        assert p + gap == q


def test_folds():
    x, y = Polynomial.variable("x"), Polynomial.variable("y")
    assert polynomial_sum([x, y, x]) == Polynomial.parse_terms(
        [(2, "x"), (1, "y")])
    assert polynomial_product([x, y]) == Polynomial.parse_terms([(1, "xy")])
    assert polynomial_sum([]).is_zero()
    assert polynomial_product([]) == Polynomial.one()


def test_repr_smoke():
    p = Polynomial.parse_terms([(2, "xy"), (1, "xx")]) + Polynomial.constant(1)
    text = repr(p)
    assert "2" in text and "x" in text
    assert repr(Polynomial.zero()) == "0"
    assert repr(Monomial.unit()) == "1"
