"""Product semirings and the random query generators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import decide_cq_containment
from repro.queries.cq import CQ
from repro.queries.generators import random_cq, random_query_pair, random_ucq
from repro.semirings import B, LIN, LIN_X_N2, N2_SATURATING, ProductSemiring
from repro.semirings.product import ProductSemiring as PS


# --- products --------------------------------------------------------------

def test_product_containment_is_conjunction_of_factors():
    """Q1 ⊆K1×K2 Q2 iff Q1 ⊆K1 Q2 and Q1 ⊆K2 Q2 — checked through the
    oracle-validated procedures on the Lin×N₂ instance."""
    from repro.oracle import find_counterexample
    rng = random.Random(8)
    for _ in range(12):
        q1 = random_cq(rng, max_atoms=2, max_vars=2)
        q2 = random_cq(rng, max_atoms=2, max_vars=2)
        product_verdict = decide_cq_containment(q1, q2, LIN_X_N2)
        lin_verdict = decide_cq_containment(q1, q2, LIN)
        if not product_verdict.decided:
            continue
        if product_verdict.result:
            # containment over the product implies it over each factor:
            assert lin_verdict.result, (q1, q2)
            assert find_counterexample(q1, q2, N2_SATURATING,
                                       rng=random.Random(2),
                                       budget=400, random_rounds=5) is None
        elif lin_verdict.result:
            # failure must then come from the N₂ factor:
            assert find_counterexample(q1, q2, N2_SATURATING,
                                       rng=random.Random(2), budget=2000,
                                       random_rounds=40) is not None, (q1, q2)


def test_product_default_properties_derived():
    product = ProductSemiring(B, LIN)
    assert product.properties.mul_idempotent
    assert not product.properties.one_annihilating  # Lin fails it
    assert product.properties.offset == 1
    assert product.name == "B×Lin[X]"


def test_product_var_helper():
    pair = LIN_X_N2.var("t")
    assert pair[0] == frozenset({"t"})
    assert pair[1] == 1


# --- generators --------------------------------------------------------------

@given(seed=st.integers(0, 10_000), head=st.integers(0, 2))
@settings(max_examples=80, deadline=None)
def test_random_cq_is_wellformed(seed, head):
    query = random_cq(random.Random(seed), head_arity=head)
    assert isinstance(query, CQ)
    assert query.arity == head
    body_vars = {v for atom in query.atoms for v in atom.variables()}
    assert set(query.head) <= body_vars
    assert 1 <= len(query.atoms) <= 3


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_random_ucq_is_wellformed(seed):
    union = random_ucq(random.Random(seed))
    assert 1 <= len(union) <= 3
    union.schema()  # consistent by construction


def test_random_query_pair_shapes():
    rng = random.Random(3)
    q1, q2 = random_query_pair(rng)
    assert isinstance(q1, CQ) and isinstance(q2, CQ)
    u1, u2 = random_query_pair(rng, ucq=True)
    assert u1.arity == u2.arity == 0


def test_generator_produces_duplicates_sometimes():
    rng = random.Random(4)
    saw_duplicate = False
    for _ in range(60):
        query = random_cq(rng, max_atoms=3, duplicate_bias=0.8)
        counts = query.atom_multiset()
        if any(count > 1 for count in counts.values()):
            saw_duplicate = True
            break
    assert saw_duplicate
