"""Public-API hygiene: exports resolve, everything documented.

Deliverable (e) requires doc comments on every public item; this test
enforces it mechanically across the whole package.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro.")
]


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(member) or inspect.isclass(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        assert inspect.getdoc(member), f"{module_name}.{name} undocumented"
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                assert inspect.getdoc(method), (
                    f"{module_name}.{name}.{method_name} undocumented")


def test_subpackage_exports_resolve():
    for subpackage in ("semirings", "queries", "polynomials", "data",
                       "homomorphisms", "core", "optimize", "oracle"):
        module = importlib.import_module(f"repro.{subpackage}")
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"repro.{subpackage}.{name}"


def test_version_present():
    assert repro.__version__
