"""Terms, atoms, CQs, UCQs: construction, validation, immutability."""

from __future__ import annotations

import pytest

from repro.queries import CQ, UCQ, Atom, Var, as_ucq
from repro.queries.atoms import is_var, term_sort_key


# --- Var / Atom -------------------------------------------------------

def test_var_identity():
    assert Var("x") == Var("x")
    assert Var("x") != Var("y")
    assert hash(Var("x")) == hash(Var("x"))
    assert Var("x") < Var("y")
    with pytest.raises(ValueError):
        Var("")


def test_var_immutable():
    with pytest.raises(AttributeError):
        Var("x").name = "y"


def test_is_var_distinguishes_constants():
    assert is_var(Var("x"))
    assert not is_var("x")
    assert not is_var(7)


def test_atom_basics():
    atom = Atom("R", (Var("x"), "berlin", 7))
    assert atom.relation == "R"
    assert atom.arity == 3
    assert atom.variables() == (Var("x"),)
    with pytest.raises(ValueError):
        Atom("", (Var("x"),))


def test_atom_substitute():
    atom = Atom("R", (Var("x"), Var("y"), "c"))
    image = atom.substitute({Var("x"): Var("z")})
    assert image == Atom("R", (Var("z"), Var("y"), "c"))
    # constants may be substitution images of variables
    image = atom.substitute({Var("y"): 5})
    assert image == Atom("R", (Var("x"), 5, "c"))


def test_term_sort_key_total_order():
    values = [Var("b"), "b", Var("a"), 7, "a"]
    ordered = sorted(values, key=term_sort_key)
    assert ordered[:2] == [Var("a"), Var("b")]  # variables first


# --- CQ ---------------------------------------------------------------

def test_cq_requires_head_in_body():
    with pytest.raises(ValueError):
        CQ((Var("x"),), (Atom("R", (Var("y"), Var("z"))),))


def test_cq_requires_atoms():
    with pytest.raises(ValueError):
        CQ((), ())


def test_cq_head_must_be_variables():
    with pytest.raises(TypeError):
        CQ(("x",), (Atom("R", (Var("x"),)),))


def test_cq_multiset_body():
    atom = Atom("R", (Var("x"), Var("y")))
    single = CQ((), (atom,))
    double = CQ((), (atom, atom))
    assert single != double
    assert double.atom_multiset() == {atom: 2}


def test_cq_atom_order_canonical():
    a1 = Atom("R", (Var("x"), Var("y")))
    a2 = Atom("S", (Var("x"),))
    assert CQ((), (a1, a2)) == CQ((), (a2, a1))


def test_cq_variable_partition():
    q = CQ((Var("x"),), (Atom("R", (Var("x"), Var("y"))),
                         Atom("S", (Var("z"),))))
    assert q.head_vars() == (Var("x"),)
    assert q.existential_vars() == (Var("y"), Var("z"))
    assert set(q.variables()) == {Var("x"), Var("y"), Var("z")}


def test_cq_schema_consistency():
    q = CQ((), (Atom("R", (Var("x"), Var("y"))),))
    assert q.schema() == {"R": 2}
    bad = CQ((), (Atom("R", (Var("x"),)), Atom("R", (Var("x"), Var("y")))))
    with pytest.raises(ValueError):
        bad.schema()


def test_cq_substitute_and_rename():
    q = CQ((Var("x"),), (Atom("R", (Var("x"), Var("y"))),))
    renamed = q.rename_apart("_1")
    assert renamed.head == (Var("x_1"),)
    assert renamed != q
    substituted = q.substitute({Var("y"): Var("x")})
    assert substituted.atoms == (Atom("R", (Var("x"), Var("x"))),)


def test_cq_constants():
    q = CQ((), (Atom("R", (Var("x"), "paris", 3)),))
    assert set(q.constants()) == {3, "paris"}


def test_cq_immutable():
    q = CQ((), (Atom("R", (Var("x"),)),))
    with pytest.raises(AttributeError):
        q.head = ()


# --- UCQ ---------------------------------------------------------------

def test_ucq_arity_check():
    q0 = CQ((), (Atom("R", (Var("x"),)),))
    q1 = CQ((Var("x"),), (Atom("R", (Var("x"),)),))
    with pytest.raises(ValueError):
        UCQ((q0, q1))


def test_ucq_schema_check():
    q0 = CQ((), (Atom("R", (Var("x"),)),))
    q1 = CQ((), (Atom("R", (Var("x"), Var("y"))),))
    with pytest.raises(ValueError):
        UCQ((q0, q1))


def test_ucq_multiset_semantics():
    q = CQ((), (Atom("R", (Var("x"),)),))
    assert UCQ((q,)) != UCQ((q, q))
    assert len(UCQ((q, q))) == 2


def test_ucq_empty():
    empty = UCQ(())
    assert empty.is_empty()
    assert empty.arity == 0
    assert list(empty) == []


def test_ucq_union_and_member():
    q = CQ((), (Atom("R", (Var("x"),)),))
    u = UCQ((q,))
    assert len(u.union(u)) == 2
    assert len(u.with_member(q)) == 2


def test_as_ucq_coercion():
    q = CQ((), (Atom("R", (Var("x"),)),))
    assert as_ucq(q) == UCQ((q,))
    assert as_ucq(UCQ((q,))) == UCQ((q,))
    with pytest.raises(TypeError):
        as_ucq("not a query")
