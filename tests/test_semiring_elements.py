"""Hand-computed element arithmetic for each concrete semiring.

These pin down the intended semantics (the audits only check laws, not
that e.g. ``Why[X]`` multiplication really merges witnesses pairwise).
"""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.polynomials import Monomial, Polynomial
from repro.semirings import (ACCESS, B, BOTTOM, BX, EVENTS, FUZZY, LIN,
                             LIN_X_N2, LUKASIEWICZ, N, N2X,
                             N2_SATURATING, N3_SATURATING, NX, POSBOOL,
                             RPLUS, SORP, TMINUS, TPLUS, TRIO, VITERBI,
                             WHY, SaturatingNaturalSemiring)


# --- boolean ----------------------------------------------------------

def test_boolean_ops():
    assert B.add(False, True) is True
    assert B.mul(True, False) is False
    assert B.leq(False, True)
    assert not B.leq(True, False)


# --- bag and saturating bags ------------------------------------------

def test_natural_ops():
    assert N.add(2, 3) == 5
    assert N.mul(2, 3) == 6
    assert N.leq(2, 3) and not N.leq(3, 2)


def test_saturating_caps():
    assert N2_SATURATING.add(1, 1) == 2
    assert N2_SATURATING.add(2, 2) == 2
    assert N2_SATURATING.mul(2, 2) == 2
    assert N3_SATURATING.mul(2, 2) == 3
    assert N2_SATURATING.normalize(17) == 2


def test_saturating_offset_is_exact():
    """k·1 = (k+1)·1 but (k−1)·1 ≠ k·1 — smallest offset is the cap."""
    for cap in (2, 3, 4):
        semiring = SaturatingNaturalSemiring(cap)
        assert semiring.scale(cap, 1) == semiring.scale(cap + 1, 1)
        assert semiring.scale(cap - 1, 1) != semiring.scale(cap, 1)


def test_n2_is_mul_idempotent_but_n3_is_not():
    assert all(N2_SATURATING.mul(x, x) == x for x in (0, 1, 2))
    assert N3_SATURATING.mul(2, 2) != 2


def test_saturating_requires_positive_cap():
    with pytest.raises(ValueError):
        SaturatingNaturalSemiring(0)


# --- provenance polynomials -------------------------------------------

def test_nx_polynomial_arithmetic():
    x, y = NX.var("x"), NX.var("y")
    square = NX.mul(NX.add(x, y), NX.add(x, y))
    assert square == Polynomial.parse_terms(
        [(1, "xx"), (2, "xy"), (1, "yy")])


def test_bx_collapses_coefficients():
    x, y = BX.var("x"), BX.var("y")
    square = BX.mul(BX.add(x, y), BX.add(x, y))
    assert square == Polynomial.parse_terms(
        [(1, "xx"), (1, "xy"), (1, "yy")])


def test_n2x_caps_coefficients():
    x = N2X.var("x")
    assert N2X.add(N2X.add(x, x), x) == Polynomial.parse_terms([(2, "x")])


def test_nx_order_is_coefficientwise():
    p = Polynomial.parse_terms([(1, "xy")])
    q = Polynomial.parse_terms([(2, "xy"), (1, "xx")])
    assert NX.leq(p, q)
    assert not NX.leq(q, p)
    # Incomparable monomials are incomparable annotations.
    assert not NX.leq(Polynomial.parse_terms([(1, "xx")]),
                      Polynomial.parse_terms([(1, "xy")]))


# --- lineage ----------------------------------------------------------

def test_lineage_ops():
    a, b = LIN.var("t1"), LIN.var("t2")
    assert LIN.add(a, b) == frozenset({"t1", "t2"})
    assert LIN.mul(a, b) == frozenset({"t1", "t2"})
    assert LIN.add(BOTTOM, a) == a
    assert LIN.mul(BOTTOM, a) is BOTTOM
    assert LIN.leq(BOTTOM, a)
    assert LIN.leq(a, LIN.add(a, b))
    assert not LIN.leq(LIN.add(a, b), a)


# --- why-provenance ---------------------------------------------------

def test_why_ops():
    a, b = WHY.var("t1"), WHY.var("t2")
    assert WHY.add(a, b) == frozenset({frozenset({"t1"}), frozenset({"t2"})})
    assert WHY.mul(a, b) == frozenset({frozenset({"t1", "t2"})})
    # Squaring a sum creates the merged witness: not ⊗-idempotent.
    s = WHY.add(a, b)
    assert WHY.mul(s, s) == frozenset({
        frozenset({"t1"}), frozenset({"t2"}), frozenset({"t1", "t2"})})


# --- Trio -------------------------------------------------------------

def test_trio_drops_exponents_keeps_coefficients():
    x, y = TRIO.var("x"), TRIO.var("y")
    s = TRIO.add(x, y)
    assert TRIO.mul(s, s) == Polynomial.parse_terms(
        [(1, "x"), (2, "xy"), (1, "y")])


def test_trio_semi_idempotent_example():
    x, y = TRIO.var("x"), TRIO.var("y")
    a = TRIO.add(x, y)
    ab = TRIO.mul(a, TRIO.one)
    aab = TRIO.mul(TRIO.mul(a, a), TRIO.one)
    assert TRIO.leq(ab, aab)


# --- PosBool ----------------------------------------------------------

def test_posbool_absorption():
    x, y = POSBOOL.var("x"), POSBOOL.var("y")
    # x ∨ (x ∧ y) = x
    assert POSBOOL.add(x, POSBOOL.mul(x, y)) == x
    # 1 ∨ x = 1 (1-annihilation)
    assert POSBOOL.add(POSBOOL.one, x) == POSBOOL.one
    assert POSBOOL.mul(x, x) == x


def test_posbool_order():
    x, y = POSBOOL.var("x"), POSBOOL.var("y")
    assert POSBOOL.leq(POSBOOL.mul(x, y), x)       # x∧y ⇒ x
    assert POSBOOL.leq(x, POSBOOL.add(x, y))       # x ⇒ x∨y
    assert not POSBOOL.leq(x, y)


# --- Sorp (absorptive polynomials) ------------------------------------

def test_sorp_absorbs_multiples():
    x, y = SORP.var("x"), SORP.var("y")
    xy = SORP.mul(x, y)
    assert SORP.add(x, xy) == x               # m + m·q = m
    assert SORP.add(SORP.one, x) == SORP.one  # 1 + x = 1
    x2 = SORP.mul(x, x)
    assert x2 != x                            # exponents retained
    assert SORP.leq(x2, x)                    # but x divides x²
    assert not SORP.leq(x, x2)


def test_sorp_not_semi_idempotent():
    x, y = SORP.var("x"), SORP.var("y")
    xy = SORP.mul(x, y)
    xxy = SORP.mul(SORP.mul(x, x), y)
    assert not SORP.leq(xy, xxy)


# --- tropical ---------------------------------------------------------

def test_tplus_ops_and_order():
    assert TPLUS.add(3, 5) == 3
    assert TPLUS.mul(3, 5) == 8
    assert TPLUS.zero == math.inf
    assert TPLUS.one == 0
    assert TPLUS.leq(math.inf, 3)      # ∞ is the bottom
    assert TPLUS.leq(5, 3)             # reversed numeric order
    assert not TPLUS.leq(3, 5)


def test_tminus_ops_and_order():
    assert TMINUS.add(3, 5) == 5
    assert TMINUS.mul(3, 5) == 8
    assert TMINUS.zero == -math.inf
    assert TMINUS.leq(-math.inf, 3)
    assert TMINUS.leq(3, 5)
    assert not TMINUS.leq(5, 3)


# --- unit interval ----------------------------------------------------

def test_viterbi_ops():
    half, third = Fraction(1, 2), Fraction(1, 3)
    assert VITERBI.add(half, third) == half
    assert VITERBI.mul(half, third) == Fraction(1, 6)
    assert VITERBI.leq(third, half)


def test_fuzzy_ops():
    half, third = Fraction(1, 2), Fraction(1, 3)
    assert FUZZY.add(half, third) == half
    assert FUZZY.mul(half, third) == third


def test_lukasiewicz_tnorm():
    a, b = Fraction(3, 4), Fraction(1, 2)
    assert LUKASIEWICZ.mul(a, b) == Fraction(1, 4)
    assert LUKASIEWICZ.mul(Fraction(1, 4), Fraction(1, 2)) == 0


# --- events and access ------------------------------------------------

def test_event_semiring():
    omega = EVENTS.one
    some = frozenset(list(omega)[:1])
    assert EVENTS.add(some, EVENTS.zero) == some
    assert EVENTS.mul(some, omega) == some
    assert EVENTS.leq(some, omega)


def test_access_levels():
    public = ACCESS.level("public")
    secret = ACCESS.level("secret")
    assert ACCESS.mul(public, secret) == secret   # joint use: stricter
    assert ACCESS.add(public, secret) == public   # alternative: laxer
    assert ACCESS.leq(secret, public)             # stricter ≼ laxer
    assert ACCESS.leq(ACCESS.zero, secret)


# --- rationals --------------------------------------------------------

def test_rplus_amgm_counterexample():
    """x·y ≼R+ x² + y² (AM-GM): R+ is outside Nin."""
    for x in (Fraction(1, 2), Fraction(2), Fraction(3, 2)):
        for y in (Fraction(1, 3), Fraction(1), Fraction(5, 2)):
            assert RPLUS.leq(x * y, x * x + y * y)


# --- free ordered Ssur --------------------------------------------------

def test_ssur_order_is_exponent_raising_matching():
    from repro.semirings import SSUR
    x, y = SSUR.var("x"), SSUR.var("y")
    xy = SSUR.mul(x, y)
    xxy = SSUR.mul(SSUR.mul(x, x), y)
    assert SSUR.leq(xy, xxy)            # the defining axiom
    assert not SSUR.leq(xxy, xy)
    assert not SSUR.leq(x, y)           # different supports incomparable
    assert not SSUR.leq(x, SSUR.mul(x, y))  # support must be preserved
    assert SSUR.leq(x, SSUR.add(x, y))  # sum dominates parts
    two_x = SSUR.add(x, x)
    assert SSUR.leq(x, two_x)
    assert not SSUR.leq(two_x, x)       # coefficients need capacity


# --- product ----------------------------------------------------------

def test_product_componentwise():
    a = (LIN.var("t"), 1)
    b = (BOTTOM, 2)
    assert LIN_X_N2.add(a, b) == (frozenset({"t"}), 2)
    assert LIN_X_N2.mul(a, b) == (BOTTOM, 2)
    assert LIN_X_N2.leq(LIN_X_N2.zero, a)
    assert not LIN_X_N2.leq(a, b)
