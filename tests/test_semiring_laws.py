"""Audit every registered semiring: algebra laws, positivity, and the
declared classification flags (both directions).

These tests are the library's substitute for algebraic type safety: a
wrong operation or a mis-declared axiom flag fails here before it can
corrupt a containment verdict.
"""

from __future__ import annotations

import random

import pytest

from repro.semirings import (ALL_SEMIRINGS, audit_declared_axioms,
                             audit_positivity, audit_semiring_laws)
from tests.helpers import semiring_params


@pytest.mark.parametrize("semiring", semiring_params())
def test_semiring_laws(semiring):
    report = audit_semiring_laws(semiring, random.Random(11), rounds=250)
    assert report.ok, report.failures[:5]


@pytest.mark.parametrize("semiring", semiring_params())
def test_positivity(semiring):
    report = audit_positivity(semiring, random.Random(12), rounds=200)
    assert report.ok, report.failures[:5]


@pytest.mark.parametrize("semiring", semiring_params())
def test_declared_axioms(semiring):
    report = audit_declared_axioms(semiring, random.Random(13), rounds=400)
    assert report.ok, report.failures[:5]


@pytest.mark.parametrize("semiring", semiring_params())
def test_zero_one_distinct(semiring):
    assert not semiring.eq(semiring.zero, semiring.one)


@pytest.mark.parametrize("semiring", semiring_params())
def test_sum_prod_folds(semiring):
    rng = random.Random(14)
    items = [semiring.sample(rng) for _ in range(4)]
    total = items[0]
    for item in items[1:]:
        total = semiring.add(total, item)
    assert semiring.eq(semiring.sum(items), total)
    product = items[0]
    for item in items[1:]:
        product = semiring.mul(product, item)
    assert semiring.eq(semiring.prod(items), product)
    assert semiring.eq(semiring.sum(()), semiring.zero)
    assert semiring.eq(semiring.prod(()), semiring.one)


@pytest.mark.parametrize("semiring", semiring_params())
def test_from_int_is_morphism(semiring):
    """n ↦ n·1 preserves + and × (the unique morphism N → K)."""
    for a in range(4):
        for b in range(4):
            assert semiring.eq(
                semiring.from_int(a + b),
                semiring.add(semiring.from_int(a), semiring.from_int(b)))
            assert semiring.eq(
                semiring.from_int(a * b),
                semiring.mul(semiring.from_int(a), semiring.from_int(b)))


@pytest.mark.parametrize("semiring", semiring_params())
def test_scale_and_power(semiring):
    rng = random.Random(15)
    x = semiring.sample(rng)
    assert semiring.eq(semiring.scale(0, x), semiring.zero)
    assert semiring.eq(semiring.scale(1, x), x)
    assert semiring.eq(semiring.scale(3, x),
                       semiring.add(x, semiring.add(x, x)))
    assert semiring.eq(semiring.power(x, 0), semiring.one)
    assert semiring.eq(semiring.power(x, 1), x)
    assert semiring.eq(semiring.power(x, 3),
                       semiring.mul(x, semiring.mul(x, x)))
    with pytest.raises(ValueError):
        semiring.scale(-1, x)
    with pytest.raises(ValueError):
        semiring.power(x, -1)


@pytest.mark.parametrize("semiring", semiring_params())
def test_sample_pool_contains_identities(semiring):
    pool = semiring.sample_pool(random.Random(16), 6)
    assert len(pool) == 6
    assert any(semiring.eq(element, semiring.zero) for element in pool)
    assert any(semiring.eq(element, semiring.one) for element in pool)


def test_registry_names_unique():
    names = [s.name for s in ALL_SEMIRINGS]
    assert len(names) == len(set(names))


def test_registry_lookup():
    from repro.semirings import get_semiring
    assert get_semiring("B").name == "B"
    assert get_semiring("N[X]").name == "N[X]"
    with pytest.raises(KeyError):
        get_semiring("no-such-semiring")
