"""Separations between the containment relations of the classes.

The paper's starting observation: "two queries may be equivalent under
K1-relations but not under K2-relations".  This suite exhibits a
concrete separating query pair for *every* adjacent pair of decidable
classes — each verified semantically by the oracle, so the separations
are facts about the semirings, not about our procedures.
"""

from __future__ import annotations

import pytest

from repro.core import decide_cq_containment
from repro.oracle import find_counterexample
from repro.queries import parse_cq
from repro.semirings import (B, LIN, NX, SORP, TMINUS, TPLUS, TRIO, WHY)

#: (name, q1, q2, {semiring: expected containment Q1 ⊆K Q2})
SEPARATIONS = [
    (
        "covering needs every atom reached",
        "Q() :- R(u, v), S(u)",
        "Q() :- R(u, v)",
        {B: True, LIN: False, SORP: True, WHY: False, NX: False},
    ),
    (
        "Ex. 4.6: collapse pair",
        "Q() :- R(u, v), R(u, w)",
        "Q() :- R(u, v), R(u, v)",
        {B: True, LIN: True, SORP: False, WHY: False, NX: False,
         TPLUS: True, TMINUS: True},
    ),
    (
        # Two copies cannot inject into one atom (Sorp refuses), the
        # doubled right side costs more under min-plus (T+ refuses,
        # order reversed), but surjectivity and max-plus both accept.
        "duplicated right-hand side",
        "Q() :- R(u, v)",
        "Q() :- R(u, v), R(u, v)",
        {B: True, LIN: True, SORP: False, WHY: True, TRIO: True,
         NX: False, TPLUS: False, TMINUS: True},
    ),
    (
        # Mirror image: one atom injects into two copies (Sorp accepts)
        # but cannot cover both occurrences (Why refuses); min-plus
        # accepts the cheaper right side, max-plus refuses.
        "duplicated left-hand side",
        "Q() :- R(u, v), R(u, v)",
        "Q() :- R(u, v)",
        {B: True, LIN: True, SORP: True, WHY: False, TRIO: False,
         NX: False, TPLUS: True, TMINUS: False},
    ),
    (
        "injective beats surjective on distinct-atom targets",
        "Q() :- R(x, y), S(x)",
        "Q() :- S(x)",
        {B: True, LIN: False, SORP: True, WHY: False, NX: False},
    ),
]


@pytest.mark.parametrize(
    "name,q1_text,q2_text,expectations",
    SEPARATIONS, ids=[s[0] for s in SEPARATIONS])
def test_separation(name, q1_text, q2_text, expectations):
    q1, q2 = parse_cq(q1_text), parse_cq(q2_text)
    for semiring, expected in expectations.items():
        verdict = decide_cq_containment(q1, q2, semiring)
        assert verdict.result is expected, (name, semiring.name)
        # semantic confirmation through the oracle
        witness = find_counterexample(q1, q2, semiring, budget=800,
                                      random_rounds=8)
        if expected:
            assert witness is None, (name, semiring.name, witness)
        else:
            assert witness is not None, (name, semiring.name)


def test_every_decidable_class_pair_separated():
    """For every pair of the five CQ classes, some curated pair
    distinguishes their containment relations."""
    representatives = {
        "Chom": B, "Chcov": LIN, "Cin": SORP, "Csur": WHY, "Cbi": NX,
    }
    queries = [
        (parse_cq(q1), parse_cq(q2)) for _, q1, q2, _ in SEPARATIONS
    ]
    names = sorted(representatives)
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            k1, k2 = representatives[first], representatives[second]
            separated = any(
                decide_cq_containment(q1, q2, k1).result
                != decide_cq_containment(q1, q2, k2).result
                for q1, q2 in queries
            )
            assert separated, f"{first} and {second} not separated"


def test_containment_strictly_weakens_down_the_lattice():
    """Whenever the bijective condition holds, every other class's
    containment holds too (bijective homs are universally sufficient) —
    the separations go one way only."""
    for _, q1_text, q2_text, expectations in SEPARATIONS:
        q1, q2 = parse_cq(q1_text), parse_cq(q2_text)
        if decide_cq_containment(q1, q2, NX).result:
            for semiring in (B, LIN, SORP, WHY, TPLUS, TMINUS):
                assert decide_cq_containment(q1, q2, semiring).result, (
                    q1_text, semiring.name)
