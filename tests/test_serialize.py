"""Query serialization round-trips."""

from __future__ import annotations

import json
import random

import pytest

from repro.queries import UCQ, parse_cq, parse_ucq
from repro.queries.generators import random_cq, random_ucq
from repro.queries.serialize import query_from_dict, query_to_dict


@pytest.mark.parametrize("text", [
    "Q() :- R(x, x)",
    "Q(x) :- R(x, y), S(y)",
    "Q(x, x) :- R(x, y), R(x, y)",
    "Q() :- R(x, 'berlin'), S(7)",
    "Q() :- R(u, v), R(u, w), u != v, v != w",
])
def test_cq_roundtrip(text):
    query = parse_cq(text)
    data = query_to_dict(query)
    json.dumps(data)  # must be JSON-able
    assert query_from_dict(data) == query


def test_ucq_roundtrip():
    union = parse_ucq(["Q(x) :- R(x, x)", "Q(y) :- S(y)"])
    data = query_to_dict(union)
    json.dumps(data)
    assert query_from_dict(data) == union


def test_empty_ucq_roundtrip():
    assert query_from_dict(query_to_dict(UCQ(()))) == UCQ(())


def test_random_roundtrips():
    rng = random.Random(77)
    for _ in range(25):
        query = random_cq(rng, max_atoms=3, max_vars=3, head_arity=1)
        assert query_from_dict(
            json.loads(json.dumps(query_to_dict(query)))) == query
    for _ in range(10):
        union = random_ucq(rng)
        assert query_from_dict(
            json.loads(json.dumps(query_to_dict(union)))) == union


def test_ccq_kind_marked():
    ccq = parse_cq("Q() :- R(u, v), u != v")
    data = query_to_dict(ccq)
    assert data["kind"] == "ccq"
    restored = query_from_dict(data)
    assert restored == ccq
    assert restored.inequalities


def test_duplicate_atoms_preserved():
    query = parse_cq("Q() :- R(x, y), R(x, y)")
    restored = query_from_dict(query_to_dict(query))
    assert len(restored.atoms) == 2


def test_errors():
    with pytest.raises(ValueError):
        query_from_dict({"kind": "mystery"})
    with pytest.raises(TypeError):
        query_to_dict("not a query")
    with pytest.raises(ValueError):
        query_from_dict({"kind": "cq", "head": [{"nope": 1}], "atoms": []})


def test_query_types_pickle_round_trip():
    # Worker-pool requests and cache snapshots cross process boundaries
    # via pickle; the slotted immutable types rebuild through their
    # constructors.
    import pickle

    rng = random.Random(99)
    samples = [
        parse_cq("Q(x) :- R(x, y), R(x, 3), S('a')"),
        parse_cq("Q() :- R(u, v), u != v"),
        UCQ((parse_cq("Q(x) :- R(x, y)"), parse_cq("Q(z) :- R(z, z)"))),
        UCQ(()),
    ]
    samples += [random_cq(rng) for _ in range(5)]
    samples += [random_ucq(rng) for _ in range(5)]
    for query in samples:
        restored = pickle.loads(pickle.dumps(query))
        assert restored == query
        assert hash(restored) == hash(query)
        inequalities = getattr(query, "inequalities", None)
        if inequalities is not None:
            assert restored.inequalities == inequalities


def test_pickled_cq_is_still_immutable_and_rehashed():
    import pickle

    query = parse_cq("Q(x) :- R(x, y)")
    restored = pickle.loads(pickle.dumps(query))
    with pytest.raises(AttributeError):
        restored.head = ()
    # The lazily-built matcher cache starts fresh in the new process.
    assert restored._hom_cache == {}
