"""The asyncio gateway: pipelining, shedding, deadlines, bounded lines.

Each test boots a real :class:`AsyncGateway` on an ephemeral port in a
background thread and speaks the JSONL protocol over genuine sockets.
SIGSTOP/SIGCONT on a worker process make overload and deadline expiry
deterministic without sleeps-as-synchronisation.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import threading

import pytest

from repro.service import AsyncGateway, SupervisedWorkerPool


def request_line(index: int, *, prefix: str = "g") -> str:
    return json.dumps({"semiring": "N",
                       "q1": f"Q() :- R(u, v), W{index}(u)",
                       "q2": "Q() :- R(u, v)",
                       "id": f"{prefix}{index}"})


@pytest.fixture()
def gateway_factory():
    """Boot gateways on demand; tear all of them down afterwards."""
    started: list[tuple[AsyncGateway, threading.Thread]] = []

    def boot(pool, **kwargs) -> AsyncGateway:
        gateway = AsyncGateway(pool, **kwargs)
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(
                gateway.serve("127.0.0.1", 0, ready=ready)),
            daemon=True)
        thread.start()
        assert ready.wait(timeout=10)
        started.append((gateway, thread))
        return gateway

    yield boot
    for gateway, thread in started:
        if thread.is_alive():
            exchange(gateway, ['{"op": "shutdown"}'])
            thread.join(timeout=10)
        assert not thread.is_alive()


def exchange(gateway: AsyncGateway, lines: list[str],
             timeout: float = 30.0) -> list[dict]:
    """One pipelined conversation: write everything, then read replies."""
    with socket.create_connection(gateway.tcp_address,
                                  timeout=timeout) as client:
        with client.makefile("rw", encoding="utf-8",
                             newline="\n") as stream:
            for line in lines:
                stream.write(line + "\n")
            stream.flush()
            client.shutdown(socket.SHUT_WR)
            return [json.loads(line) for line in stream if line.strip()]


def test_pipelined_connections_answer_in_request_order(gateway_factory):
    with SupervisedWorkerPool(2) as pool:
        gateway = gateway_factory(pool)
        replies: dict[str, list[dict]] = {}

        def client(prefix: str) -> None:
            lines = [request_line(i, prefix=prefix) for i in range(10)]
            replies[prefix] = exchange(gateway, lines)

        threads = [threading.Thread(target=client, args=(prefix,))
                   for prefix in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        for prefix in ("a", "b"):
            assert [reply["request_id"] for reply in replies[prefix]] \
                == [f"{prefix}{i}" for i in range(10)]
            assert all("result" in reply for reply in replies[prefix])
        assert gateway.served == 20
        assert gateway.metrics.get("accepted") == 20
        assert gateway.metrics.get("shed") == 0


def test_malformed_and_control_lines_keep_pipeline_order(gateway_factory):
    with SupervisedWorkerPool(1) as pool:
        gateway = gateway_factory(pool)
        replies = exchange(gateway, [request_line(0), "not json",
                                     '{"op": "ping"}', request_line(1)])
        assert replies[0]["request_id"] == "g0"
        assert "error" in replies[1]
        assert replies[2] == {"op": "ping", "ok": True}
        assert replies[3]["request_id"] == "g1"


def test_oversized_line_answered_in_band(gateway_factory):
    with SupervisedWorkerPool(1) as pool:
        gateway = gateway_factory(pool, max_line_bytes=256)
        replies = exchange(gateway, ["x" * 4096, request_line(0)])
        assert replies[0]["oversized"] is True
        assert "256" in replies[0]["error"]
        assert replies[1]["request_id"] == "g0"


def test_deadline_expiry_is_in_band_and_abandons_the_seat(gateway_factory):
    with SupervisedWorkerPool(1) as pool:
        gateway = gateway_factory(pool, deadline=0.3)
        pid = pool.worker_pids()[0]
        os.kill(pid, signal.SIGSTOP)
        try:
            replies = exchange(gateway, [request_line(0)])
        finally:
            os.kill(pid, signal.SIGCONT)
        assert replies[0]["expired"] is True
        assert replies[0]["id"] == "g0"
        assert gateway.metrics.get("expired") == 1
        # The seat was released: the connection is done, the pool is
        # free again, and a fresh request decides normally.
        replies = exchange(gateway, [request_line(1)])
        assert replies[0]["request_id"] == "g1"


def test_load_shedding_rejects_newest_in_band(gateway_factory):
    with SupervisedWorkerPool(1) as pool:
        gateway = gateway_factory(pool, deadline=1.0, queue_limit=1)
        pid = pool.worker_pids()[0]
        os.kill(pid, signal.SIGSTOP)
        try:
            replies = exchange(gateway,
                               [request_line(i) for i in range(3)])
        finally:
            os.kill(pid, signal.SIGCONT)
        assert replies[0]["expired"] is True        # admitted, then timed out
        for reply in replies[1:]:
            assert reply["overloaded"] is True      # rejected newest
            assert "retry later" in reply["error"]
        assert [reply["id"] for reply in replies] == ["g0", "g1", "g2"]
        assert gateway.metrics.get("shed") == 2
        assert gateway.metrics.get("accepted") == 1


def test_stats_op_reports_the_service_dimension(gateway_factory):
    with SupervisedWorkerPool(2) as pool:
        gateway = gateway_factory(pool)
        exchange(gateway, [request_line(i) for i in range(4)])
        replies = exchange(gateway, ['{"op": "stats"}'])
        service = replies[0]["service"]
        assert service["accepted"] == 4
        assert service["respawns"] == 0
        assert len(service["worker_pids"]) == 2
        assert all(isinstance(pid, int)
                   for pid in service["worker_pids"])
        assert replies[0]["cache_stats"]["service"] == service


def test_shutdown_op_stops_the_gateway_cleanly(gateway_factory):
    with SupervisedWorkerPool(1) as pool:
        gateway = gateway_factory(pool)
        replies = exchange(gateway, [request_line(0),
                                     '{"op": "shutdown"}'])
        assert replies[0]["request_id"] == "g0"
        assert replies[1] == {"op": "shutdown", "ok": True}
