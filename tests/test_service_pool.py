"""The sharded multiprocess worker pool."""

from __future__ import annotations

import time

import pytest

from repro.api import ContainmentEngine, ContainmentRequest
from repro.service import DecisionError, WorkerPool, load_snapshot, shard_key

CQ_PAIRS = [
    ("Q() :- R(u, v), R(u, w)", "Q() :- R(u, v), R(u, v)"),
    ("Q() :- R(u, v), R(u, v)", "Q() :- R(u, v), R(u, w)"),
    ("Q() :- R(u, v)", "Q() :- R(u, v), R(u, v)"),
    ("Q() :- R(u, v), S(u)", "Q() :- R(u, v)"),
    ("Q() :- R(u, u)", "Q() :- R(u, v)"),
    ("Q() :- E(x, y), E(y, z)", "Q() :- E(u, v), E(v, u)"),
    ("Q() :- R(x, y), R(y, z), R(x, z)", "Q() :- R(a, b), R(b, c)"),
]
UCQ_PAIRS = [
    (["Q() :- R(v), S(v)"], ["Q() :- R(v), R(v)", "Q() :- S(v), S(v)"]),
    (["Q() :- R(v), S(v)"], ["Q() :- R(v)", "Q() :- S(v)"]),
    (["Q() :- R(u, u)", "Q() :- R(u, u)"], ["Q() :- R(u, u)"]),
]
SEMIRINGS = ["B", "N", "Lin[X]", "Why[X]", "T+", "N[X]", "Trio[X]"]


def mixed_workload(*, repeats: int = 1) -> list[dict]:
    """A mixed-semiring JSONL-style workload with duplicate requests."""
    requests: list[dict] = []
    for semiring in SEMIRINGS:
        for q1, q2 in CQ_PAIRS:
            requests.append({"semiring": semiring, "q1": q1, "q2": q2})
        for q1, q2 in UCQ_PAIRS:
            requests.append({"semiring": semiring, "q1": q1, "q2": q2})
    requests.append({"semiring": "B", "q1": CQ_PAIRS[0][0],
                     "q2": CQ_PAIRS[0][1], "equivalence": True})
    requests = requests * repeats
    for index, request in enumerate(requests):
        request = dict(request)
        request["id"] = f"r{index}"
        requests[index] = request
    return requests


def sequential_documents(requests) -> list[dict]:
    engine = ContainmentEngine()
    return [doc.to_dict() for doc in engine.decide_many(requests)]


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(2) as shared:
        yield shared


def test_parallel_output_equals_sequential_byte_for_byte(pool):
    # The satellite workload: 200+ mixed-semiring requests, duplicates
    # included, decided sequentially and across workers.  Every verdict
    # document — certificate, explanation, request id, even the cached
    # flag — must match, because same-key sharding reproduces the
    # sequential engine's verdict-cache behavior.
    requests = mixed_workload(repeats=3)
    assert len(requests) >= 200
    expected = sequential_documents(requests)
    actual = [doc.to_dict() for doc in pool.decide_many(requests)]
    assert actual == expected


def test_duplicate_requests_share_one_worker_cache(pool):
    request = {"semiring": "B", "q1": "Q() :- R(a, b), S(a)",
               "q2": "Q() :- R(a, b)"}
    first, second = pool.decide_many([dict(request), dict(request)])
    assert first.cached is False
    assert second.cached is True


def test_in_band_errors_keep_positions_and_ids(pool):
    requests = [
        {"semiring": "B", "q1": "Q() :- R(u, v)", "q2": "Q() :- R(u, u)",
         "id": "ok-1"},
        {"semiring": "no-such-semiring", "q1": "Q() :- R(u)",
         "q2": "Q() :- R(u)", "id": "bad-semiring"},
        {"semiring": "B", "q1": "Q() :- broken(", "q2": "Q() :- R(u)",
         "id": "bad-query"},
        {"semiring": "B", "q1": "Q() :- R(u, v)", "q2": "Q() :- R(v, u)",
         "id": "ok-2"},
    ]
    outcomes = pool.decide_many(requests)
    assert outcomes[0].request_id == "ok-1"
    assert isinstance(outcomes[1], DecisionError)
    assert "no-such-semiring" in outcomes[1].error
    assert outcomes[1].id == "bad-semiring"
    assert isinstance(outcomes[2], DecisionError)
    assert outcomes[2].id == "bad-query"
    assert outcomes[3].request_id == "ok-2"


def test_decide_stream_preserves_order_lazily(pool):
    requests = mixed_workload()
    ids = [doc.request_id for doc in pool.decide_stream(iter(requests))]
    assert ids == [request["id"] for request in requests]


def test_sharding_is_deterministic_and_alias_stable(pool):
    request = ContainmentRequest.make("Q() :- R(u, v)", "Q() :- R(u, u)",
                                      "B")
    by_alias = ContainmentRequest.make("Q() :- R(u, v)", "Q() :- R(u, u)",
                                       "boolean")
    assert pool.shard_of(request) == pool.shard_of(request)
    # Aliases resolve to the canonical name before hashing, so "B" and
    # "boolean" land on the same worker (and thus one verdict cache).
    assert shard_key(request, ContainmentEngine().registry) \
        == shard_key(by_alias, ContainmentEngine().registry)
    assert pool.shard_of(request) == pool.shard_of(by_alias)


def test_per_worker_stats_cover_the_whole_workload():
    requests = mixed_workload()
    with WorkerPool(2) as fresh:
        fresh.decide_many(requests)
        stats = fresh.stats()
        assert len(stats) == 2
        assert sum(info["decisions"] for info in stats) == len(requests)
        aggregate = fresh.aggregate_stats()
        assert aggregate["decisions"] == len(requests)


def test_pool_snapshot_collects_worker_caches(tmp_path):
    path = tmp_path / "pool.snap"
    requests = mixed_workload()
    with WorkerPool(2, snapshot_path=path) as fresh:
        fresh.decide_many(requests)
        counts = fresh.save_snapshot()
    assert counts["verdicts"] > 0
    restored = ContainmentEngine()
    load_snapshot(restored, path)
    doc = restored.decide(requests[0]["q1"], requests[0]["q2"],
                          requests[0]["semiring"])
    assert doc.cached is True


def test_workers_warm_start_from_snapshot(tmp_path):
    path = tmp_path / "warm.snap"
    requests = mixed_workload()
    with WorkerPool(2, snapshot_path=path) as first:
        first.decide_many(requests)
        first.save_snapshot()
    with WorkerPool(2, snapshot_path=path) as second:
        docs = second.decide_many(requests)
        stats = second.stats()
    assert all(doc.cached for doc in docs)
    assert sum(info["hom_calls"] for info in stats) == 0
    assert sum(info["classify_calls"] for info in stats) == 0


def test_dead_worker_shard_reports_and_other_workers_survive():
    with WorkerPool(2) as fresh:
        victim = fresh._processes[0]
        victim.terminate()
        deadline = time.monotonic() + 5.0
        while 0 not in fresh._dead and time.monotonic() < deadline:
            time.sleep(0.05)
        assert 0 in fresh._dead, "collector must notice the dead worker"
        # Find requests routed to each shard.
        survivor_request = dead_request = None
        for index in range(64):
            request = ContainmentRequest.make(
                f"Q() :- R(u, v), S{index}(u)", "Q() :- R(u, v)", "B")
            if fresh.shard_of(request) == 0:
                dead_request = dead_request or request
            else:
                survivor_request = survivor_request or request
            if survivor_request and dead_request:
                break
        assert survivor_request is not None and dead_request is not None
        outcome = fresh.decide_one(survivor_request)
        assert outcome.result is True
        with pytest.raises(RuntimeError, match="died"):
            fresh.submit(dead_request)
        # The service entry points stay in-band instead of raising.
        failed = fresh.decide_one(dead_request)
        assert isinstance(failed, DecisionError)
        assert "died" in failed.error
        stream = fresh.decide_many([survivor_request, dead_request])
        assert stream[0].result is True
        assert isinstance(stream[1], DecisionError)


def test_rejects_zero_workers():
    with pytest.raises(ValueError):
        WorkerPool(0)
