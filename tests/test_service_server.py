"""The JSONL decision server (stdio and TCP loops)."""

from __future__ import annotations

import io
import json
import os
import signal
import socket
import threading
import time

from repro.api import ContainmentEngine
from repro.service import DecisionServer, WorkerPool, load_snapshot

REQUESTS = [
    {"semiring": "B", "q1": "Q() :- R(u, v), R(u, w)",
     "q2": "Q() :- R(u, v), R(u, v)", "id": "r1"},
    {"semiring": "Lin[X]", "q1": "Q() :- R(u, v), R(u, w)",
     "q2": "Q() :- R(u, v), R(u, v)", "id": "r2"},
    {"semiring": "N", "q1": "Q() :- R(u, v)",
     "q2": "Q() :- R(u, v), R(u, v)", "id": "r3"},
]


def run_stdio(server: DecisionServer, lines: list[str]) -> list[dict]:
    sink = io.StringIO()
    server.serve_lines(iter(line + "\n" for line in lines), sink)
    return [json.loads(line) for line in sink.getvalue().splitlines()]


def test_stdio_loop_decides_and_echoes_ids():
    responses = run_stdio(DecisionServer(),
                          [json.dumps(request) for request in REQUESTS])
    assert [r["request_id"] for r in responses] == ["r1", "r2", "r3"]
    assert responses[0]["result"] is True
    assert responses[2]["semiring"] == "N"
    assert responses[2]["answer"] in ("CONTAINED", "NOT CONTAINED",
                                      "UNDECIDED")


def test_stdio_skips_blanks_and_comments_reports_errors_in_band():
    lines = ["", "# a comment", "not json", '{"semiring": "nope", '
             '"q1": "Q() :- R(u)", "q2": "Q() :- R(u)", "id": "x"}',
             json.dumps(REQUESTS[0])]
    responses = run_stdio(DecisionServer(), lines)
    assert len(responses) == 3  # blank + comment produce no output
    assert "error" in responses[0]
    assert "error" in responses[1] and responses[1]["id"] == "x"
    assert responses[2]["request_id"] == "r1"


def test_control_ops_ping_stats_shutdown():
    server = DecisionServer()
    lines = [json.dumps(REQUESTS[0]), '{"op": "ping"}', '{"op": "stats"}',
             '{"op": "unknown-op"}', '{"op": "shutdown"}',
             json.dumps(REQUESTS[1])]  # never reached after shutdown
    responses = run_stdio(server, lines)
    assert responses[1] == {"op": "ping", "ok": True}
    assert responses[2]["op"] == "stats"
    assert responses[2]["served"] == 1
    assert responses[2]["cache_info"]["decisions"] == 1
    assert "error" in responses[3]
    assert responses[4] == {"op": "shutdown", "ok": True}
    assert len(responses) == 5  # the loop stopped at shutdown
    assert server.served == 1


def test_snapshot_op_and_periodic_flush(tmp_path):
    path = tmp_path / "serve.snap"
    server = DecisionServer(snapshot_path=path, flush_every=1)
    lines = [json.dumps(request) for request in REQUESTS]
    lines.insert(2, '{"op": "snapshot"}')
    responses = run_stdio(server, lines)
    flush_reply = responses[2]
    assert flush_reply["op"] == "snapshot"
    assert flush_reply["layers"]["verdicts"] >= 2
    assert path.exists()
    # A fresh engine warm-starts from the flushed snapshot.
    restored = ContainmentEngine()
    counts = load_snapshot(restored, path)
    assert counts["verdicts"] == len(REQUESTS)
    doc = restored.decide(REQUESTS[0]["q1"], REQUESTS[0]["q2"], "B")
    assert doc.cached is True


def test_server_restart_warm_starts_from_snapshot(tmp_path):
    path = tmp_path / "serve.snap"
    run_stdio(DecisionServer(snapshot_path=path),
              [json.dumps(request) for request in REQUESTS])
    assert path.exists()  # flushed on graceful EOF shutdown
    engine = ContainmentEngine()
    restarted = DecisionServer(engine=engine, snapshot_path=path)
    responses = run_stdio(restarted,
                          [json.dumps(request) for request in REQUESTS])
    assert all(response["cached"] for response in responses)
    assert engine.stats.hom_calls == 0
    assert engine.stats.classify_calls == 0


def test_structural_snapshot_keeps_serve_output_cold_identical(tmp_path):
    path = tmp_path / "structural.snap"
    lines = [json.dumps(request) for request in REQUESTS]
    cold = run_stdio(DecisionServer(snapshot_path=path,
                                    include_verdict_snapshot=False), lines)
    warm = run_stdio(DecisionServer(snapshot_path=path,
                                    include_verdict_snapshot=False), lines)
    assert warm == cold  # cached stays false: byte-identical documents


def test_pool_backed_server(tmp_path):
    with WorkerPool(2) as pool:
        server = DecisionServer(pool=pool)
        lines = [json.dumps(request) for request in REQUESTS]
        lines.append('{"op": "stats"}')
        responses = run_stdio(server, lines)
        assert [r.get("request_id") for r in responses[:3]] \
            == ["r1", "r2", "r3"]
        stats = responses[3]
        assert len(stats["workers"]) == 2
        assert sum(info["decisions"] for info in stats["workers"]) \
            == len(REQUESTS)


def _connect_lines(address, lines: list[str]) -> list[dict]:
    with socket.create_connection(address, timeout=10) as client:
        with client.makefile("rw", encoding="utf-8", newline="\n") as stream:
            for line in lines:
                stream.write(line + "\n")
            stream.flush()
            client.shutdown(socket.SHUT_WR)
            return [json.loads(line) for line in stream]


def test_tcp_server_conversation_and_shutdown():
    server = DecisionServer()
    ready = threading.Event()
    thread = threading.Thread(
        target=server.serve_tcp, args=("127.0.0.1", 0),
        kwargs={"ready": ready}, daemon=True)
    thread.start()
    assert ready.wait(timeout=10)
    address = server.tcp_address
    responses = _connect_lines(
        address, [json.dumps(REQUESTS[0]), '{"op": "ping"}'])
    assert responses[0]["request_id"] == "r1"
    assert responses[1]["ok"] is True
    # Second connection shares the same engine: the repeat is cached.
    responses = _connect_lines(
        address, [json.dumps(REQUESTS[0]), '{"op": "shutdown"}'])
    assert responses[0]["cached"] is True
    assert responses[1] == {"op": "shutdown", "ok": True}
    thread.join(timeout=10)
    assert not thread.is_alive(), "shutdown op must stop serve_tcp"
    assert server.served == 2


def test_stdio_oversized_line_answered_in_band_and_never_parsed():
    server = DecisionServer(max_line_bytes=128)
    lines = ["{" + "x" * 4096, json.dumps(REQUESTS[0])]
    responses = run_stdio(server, lines)
    assert responses[0]["oversized"] is True
    assert "128" in responses[0]["error"]
    assert responses[1]["request_id"] == "r1"
    assert server.served == 2


def test_stdio_unterminated_oversized_line_is_drained():
    # serve_lines reads with a byte bound, so even a single huge line
    # with no trailing newline is answered in-band, never buffered whole.
    server = DecisionServer(max_line_bytes=64)
    source = io.StringIO("y" * (1 << 20))
    sink = io.StringIO()
    server.serve_lines(source, sink)
    responses = [json.loads(line) for line in sink.getvalue().splitlines()]
    assert len(responses) == 1
    assert responses[0]["oversized"] is True


def test_tcp_oversized_line_then_valid_request_same_connection():
    server = DecisionServer(max_line_bytes=128)
    ready = threading.Event()
    thread = threading.Thread(
        target=server.serve_tcp, args=("127.0.0.1", 0),
        kwargs={"ready": ready}, daemon=True)
    thread.start()
    assert ready.wait(timeout=10)
    responses = _connect_lines(
        server.tcp_address,
        ["z" * 4096, json.dumps(REQUESTS[0]), '{"op": "shutdown"}'])
    assert responses[0]["oversized"] is True
    assert responses[1]["request_id"] == "r1"
    assert responses[2] == {"op": "shutdown", "ok": True}
    thread.join(timeout=10)
    assert not thread.is_alive()


def test_close_returns_final_stats_and_flush_counts(tmp_path):
    path = tmp_path / "final.snap"
    server = DecisionServer(snapshot_path=path)
    run_stdio(server, [json.dumps(request) for request in REQUESTS])
    stats = server.close()
    assert stats["served"] == len(REQUESTS)
    assert stats["errors"] == 0
    assert stats["flushed"]["verdicts"] == len(REQUESTS)
    assert stats["flush_error"] is None
    assert server.close() == stats  # idempotent


def test_close_surfaces_final_flush_failure(tmp_path):
    path = tmp_path / "no-such-dir" / "final.snap"
    server = DecisionServer(snapshot_path=path)
    run_stdio(server, [json.dumps(REQUESTS[0])])
    stats = server.close()
    assert stats["flushed"] is None
    assert stats["flush_error"] is not None
    assert "no-such-dir" in stats["flush_error"]
    # The failure also rides along on a later stats op... but the loop
    # is closed; assert the close report is stable instead.
    assert server.close()["flush_error"] == stats["flush_error"]


def test_pool_close_escalates_to_kill_for_wedged_workers():
    pool = WorkerPool(2)
    processes = list(pool._processes)
    os.kill(processes[0].pid, signal.SIGSTOP)  # immune to "stop"/SIGTERM
    started = time.monotonic()
    pool.close(timeout=0.5)
    elapsed = time.monotonic() - started
    assert elapsed < 8.0, "close must escalate instead of hanging"
    deadline = time.monotonic() + 5.0
    while (any(p.is_alive() for p in processes)
           and time.monotonic() < deadline):
        time.sleep(0.05)
    assert not any(p.is_alive() for p in processes)
    assert processes[0].exitcode == -signal.SIGKILL
