"""Warm-start snapshots: round trips, rejection, layer policies."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.api import ContainmentEngine
from repro.service import (SNAPSHOT_MAGIC, SNAPSHOT_VERSION, SnapshotError,
                           load_snapshot, merge_states, read_snapshot,
                           save_snapshot, write_snapshot)

WORKLOAD = [
    ("Q() :- R(u, v), R(u, w)", "Q() :- R(u, v), R(u, v)", "B"),
    ("Q() :- R(u, v), R(u, w)", "Q() :- R(u, v), R(u, v)", "Lin[X]"),
    ("Q() :- R(u, v)", "Q() :- R(u, v), R(u, v)", "N"),
    (["Q() :- R(v), S(v)"], ["Q() :- R(v)", "Q() :- S(v)"], "N[X]"),
    ("Q() :- E(x, y), E(y, z)", "Q() :- E(u, v), E(v, u)", "T+"),
]


def run_workload(engine: ContainmentEngine):
    return [engine.decide(q1, q2, semiring).to_dict()
            for q1, q2, semiring in WORKLOAD]


def entry_counts(engine: ContainmentEngine) -> dict[str, int]:
    info = engine.cache_info()
    return {key: value for key, value in info.items()
            if key.endswith("_entries")}


def test_round_trip_restores_every_cache_layer(tmp_path):
    path = tmp_path / "caches.snap"
    warmed = ContainmentEngine()
    baseline = run_workload(warmed)
    save_snapshot(warmed, path)

    restored = ContainmentEngine()
    counts = load_snapshot(restored, path)
    assert counts["verdicts"] == len(WORKLOAD)
    # The restored engine holds exactly the same cache population …
    assert entry_counts(restored) == entry_counts(warmed)
    # … and replaying the workload shows identical hit behavior: every
    # verdict is served from the verdict cache, no primitive recomputes.
    docs = run_workload(restored)
    stats = restored.stats
    assert stats.verdict_hits == len(WORKLOAD)
    assert stats.parse_calls == 0
    assert stats.classify_calls == 0
    assert stats.hom_calls == 0
    assert stats.hom_enum_calls == 0
    assert stats.cover_calls == 0
    assert stats.description_calls == 0
    for cold_doc, warm_doc in zip(baseline, docs):
        assert warm_doc["cached"] is True
        assert {k: v for k, v in warm_doc.items() if k != "cached"} \
            == {k: v for k, v in cold_doc.items() if k != "cached"}


def test_structural_snapshot_keeps_documents_byte_identical(tmp_path):
    path = tmp_path / "structural.snap"
    warmed = ContainmentEngine()
    baseline = run_workload(warmed)
    save_snapshot(warmed, path, include_verdicts=False)

    restored = ContainmentEngine()
    counts = load_snapshot(restored, path)
    assert counts["verdicts"] == 0
    assert restored.cache_info()["verdict_entries"] == 0
    # Decisions recompute (no verdict layer) but reuse every structural
    # layer — and the documents, cached flag included, equal a cold run.
    docs = run_workload(restored)
    assert docs == baseline
    stats = restored.stats
    assert stats.verdict_hits == 0
    assert stats.parse_calls == 0
    assert stats.classify_calls == 0
    assert stats.hom_calls == 0


def test_missing_file_raises_snapshot_error(tmp_path):
    with pytest.raises(SnapshotError, match="cannot read"):
        read_snapshot(tmp_path / "absent.snap")


def test_corrupted_bytes_rejected(tmp_path):
    path = tmp_path / "corrupt.snap"
    path.write_bytes(b"this is not a pickle at all")
    with pytest.raises(SnapshotError, match="corrupted"):
        load_snapshot(ContainmentEngine(), path)


def test_truncated_snapshot_rejected(tmp_path):
    path = tmp_path / "caches.snap"
    engine = ContainmentEngine()
    run_workload(engine)
    save_snapshot(engine, path)
    data = path.read_bytes()
    path.write_bytes(data[:len(data) // 2])
    with pytest.raises(SnapshotError, match="corrupted"):
        read_snapshot(path)


def test_stale_version_rejected(tmp_path):
    path = tmp_path / "stale.snap"
    envelope = {"magic": SNAPSHOT_MAGIC, "version": SNAPSHOT_VERSION + 1,
                "caches": {}}
    path.write_bytes(pickle.dumps(envelope))
    with pytest.raises(SnapshotError, match="version"):
        read_snapshot(path)


def test_foreign_pickle_rejected(tmp_path):
    path = tmp_path / "foreign.snap"
    path.write_bytes(pickle.dumps({"something": "else"}))
    with pytest.raises(SnapshotError, match="not a repro engine snapshot"):
        read_snapshot(path)
    path.write_bytes(pickle.dumps([1, 2, 3]))
    with pytest.raises(SnapshotError, match="not a snapshot envelope"):
        read_snapshot(path)


def test_snapshot_will_not_import_arbitrary_callables(tmp_path):
    # A snapshot is an input file: references to types outside the
    # repro package (and a few builtin containers) must not resolve.
    path = tmp_path / "evil.snap"
    envelope = {"magic": SNAPSHOT_MAGIC, "version": SNAPSHOT_VERSION,
                "caches": {"parsed": [("x", os.path.join)]}}
    path.write_bytes(pickle.dumps(envelope))
    with pytest.raises(SnapshotError):
        read_snapshot(path)


def test_snapshot_rejects_dotted_global_traversal(tmp_path):
    # Protocol 4's STACK_GLOBAL accepts dotted names, which would let a
    # crafted pickle reach e.g. ``os.system`` *through* a repro module
    # that imports ``os``.  Hand-assemble exactly that payload.
    def short_unicode(text: str) -> bytes:
        raw = text.encode("utf-8")
        return b"\x8c" + bytes([len(raw)]) + raw

    payload = (b"\x80\x04"                                 # PROTO 4
               + short_unicode("repro.service.snapshot")
               + short_unicode("os.system")
               + b"\x93"                                   # STACK_GLOBAL
               + b".")                                     # STOP
    path = tmp_path / "dotted.snap"
    path.write_bytes(payload)
    with pytest.raises(SnapshotError, match="dotted|corrupted"):
        read_snapshot(path)


def test_snapshot_rejects_module_level_functions(tmp_path):
    # Even inside the repro package, only classes (and the two query
    # restore hooks) may resolve — module imports and helpers must not.
    def short_unicode(text: str) -> bytes:
        raw = text.encode("utf-8")
        return b"\x8c" + bytes([len(raw)]) + raw

    payload = (b"\x80\x04"
               + short_unicode("repro.service.snapshot")
               + short_unicode("load_snapshot")
               + b"\x93" + b".")
    path = tmp_path / "helper.snap"
    path.write_bytes(payload)
    with pytest.raises(SnapshotError, match="disallowed|corrupted"):
        read_snapshot(path)


def test_malformed_layer_entries_rejected(tmp_path):
    path = tmp_path / "layers.snap"
    envelope = {"magic": SNAPSHOT_MAGIC, "version": SNAPSHOT_VERSION,
                "caches": {"parsed": [("only-a-key",)]}}
    path.write_bytes(pickle.dumps(envelope))
    with pytest.raises(SnapshotError, match="malformed entry"):
        read_snapshot(path)


def test_unknown_semiring_entries_are_skipped():
    engine = ContainmentEngine()
    run_workload(engine)
    state = engine.export_caches()
    state["classifications"] = [("NOT-A-SEMIRING", classification)
                                for _, classification
                                in state["classifications"]]
    state["verdicts"] = [(("NOT-A-SEMIRING",) + key[1:], doc)
                         for key, doc in state["verdicts"]]
    counts = ContainmentEngine().import_caches(state)
    assert counts["classifications"] == 0
    assert counts["verdicts"] == 0
    assert counts["parsed"] > 0  # structural layers still import


def test_unregistered_semiring_instances_never_exported():
    from repro.semirings.boolean import BooleanSemiring

    engine = ContainmentEngine()
    private = BooleanSemiring()  # same name as "B", different instance
    engine.decide("Q() :- R(u, v)", "Q() :- R(u, u)", private)
    state = engine.export_caches()
    assert state["verdicts"] == []
    assert state["classifications"] == []


def test_merge_states_concatenates_layers(tmp_path):
    first = ContainmentEngine()
    first.decide(*WORKLOAD[0])
    second = ContainmentEngine()
    second.decide(*WORKLOAD[2])
    merged = merge_states([first.export_caches(), second.export_caches()])
    restored = ContainmentEngine()
    counts = restored.import_caches(merged)
    assert counts["verdicts"] == 2
    assert restored.decide(*WORKLOAD[0]).cached
    assert restored.decide(*WORKLOAD[2]).cached


def test_atomic_overwrite_keeps_snapshot_readable(tmp_path):
    path = tmp_path / "caches.snap"
    engine = ContainmentEngine()
    engine.decide(*WORKLOAD[0])
    save_snapshot(engine, path)
    engine.decide(*WORKLOAD[1])
    save_snapshot(engine, path)  # overwrite in place
    counts = load_snapshot(ContainmentEngine(), path)
    assert counts["verdicts"] == 2
    leftovers = [name for name in os.listdir(tmp_path)
                 if name.startswith(".snapshot-")]
    assert leftovers == []


def test_write_snapshot_records_registry_names(tmp_path):
    path = tmp_path / "caches.snap"
    engine = ContainmentEngine()
    write_snapshot(engine.export_caches(), path,
                   semirings=engine.registry.names())
    with open(path, "rb") as handle:
        envelope = pickle.load(handle)
    assert envelope["magic"] == SNAPSHOT_MAGIC
    assert "B" in envelope["semirings"]
