"""The supervised worker pool's no-chaos behaviour and plumbing.

Chaos itself (SIGKILL mid-stream, warm-start respawn, redrive budgets)
lives in ``test_failure_injection.py``; this module checks that, with
nobody dying, :class:`SupervisedWorkerPool` is a drop-in
:class:`WorkerPool` — byte-identical output, same duplicate-cache
semantics — and that the supervision plumbing (metrics, result
callbacks, abandonment, pid reporting) behaves.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import ContainmentEngine
from repro.service import ServiceMetrics, SupervisedWorkerPool

from test_service_pool import mixed_workload, sequential_documents

REQUEST = {"semiring": "B", "q1": "Q() :- R(u, v), R(u, w)",
           "q2": "Q() :- R(u, v), R(u, v)", "id": "cb"}


@pytest.fixture(scope="module")
def pool():
    with SupervisedWorkerPool(2) as shared:
        yield shared


def test_supervised_output_equals_sequential_byte_for_byte(pool):
    requests = mixed_workload(repeats=2)
    expected = sequential_documents(requests)
    actual = [doc.to_dict() for doc in pool.decide_many(requests)]
    assert actual == expected


def test_duplicate_requests_still_share_one_cache(pool):
    request = {"semiring": "N", "q1": "Q() :- R(a, b), S(a)",
               "q2": "Q() :- R(a, b)"}
    first, second = pool.decide_many([dict(request), dict(request)])
    assert first.cached is False
    assert second.cached is True


def test_metrics_report_shape(pool):
    report = pool.metrics.as_dict()
    for counter in ("accepted", "shed", "expired", "respawns", "steals",
                    "redriven", "redrive_failures"):
        assert counter in report
    assert report["respawns"] == 0
    assert report["worker_restarts"] == [0, 0]
    assert len(report["queue_depths"]) == 2
    assert report["overflow_depth"] == 0
    assert report["max_backlog"] >= 0


def test_shared_metrics_instance_is_used_when_given():
    metrics = ServiceMetrics(workers=2)
    with SupervisedWorkerPool(2, metrics=metrics) as fresh:
        assert fresh.metrics is metrics
        fresh.decide_one(dict(REQUEST))
    assert metrics.as_dict()["respawns"] == 0


def test_on_result_callback_fires_off_thread(pool):
    done = threading.Event()
    outcomes = []
    seq = pool.submit(pool.normalize(dict(REQUEST)))
    pool.on_result(seq, lambda outcome: (outcomes.append(outcome),
                                         done.set()))
    assert done.wait(timeout=30)
    assert outcomes[0].request_id == "cb"


def test_abandon_discards_the_eventual_result(pool):
    seq = pool.submit(pool.normalize(dict(REQUEST)))
    pool.abandon(seq)
    with pytest.raises(TimeoutError):
        pool.result(seq, timeout=0.5)


def test_worker_pids_reports_live_processes(pool):
    pids = pool.worker_pids()
    assert len(pids) == 2
    assert all(isinstance(pid, int) for pid in pids)
    assert pids == [process.pid for process in pool._processes]


def test_stats_surface_whole_workload():
    requests = mixed_workload()
    with SupervisedWorkerPool(2) as fresh:
        fresh.decide_many(requests)
        stats = fresh.stats()
    assert sum(info["decisions"] for info in stats) == len(requests)


def test_warm_start_matches_base_pool_contract(tmp_path):
    path = tmp_path / "supervised-warm.snap"
    requests = mixed_workload()
    with SupervisedWorkerPool(2, snapshot_path=path) as first:
        first.decide_many(requests)
        first.save_snapshot()
    with SupervisedWorkerPool(2, snapshot_path=path) as second:
        docs = second.decide_many(requests)
    assert all(doc.cached for doc in docs)
    engine = ContainmentEngine()
    assert [doc.to_dict() for doc in engine.decide_many(requests)] \
        != [doc.to_dict() for doc in docs]  # cold run differs (cached flags)
