"""The small-model procedure (Thm. 4.17, Prop. 4.19)."""

from __future__ import annotations

import random

import pytest

from repro.core import small_model_contained, small_model_tests
from repro.oracle import find_counterexample
from repro.queries import UCQ, parse_cq, parse_ucq
from repro.queries.generators import random_cq
from repro.semirings import B, N, TMINUS, TPLUS


def test_rejects_non_idempotent_semiring():
    q = parse_cq("Q() :- R(u, u)")
    with pytest.raises(ValueError):
        small_model_contained(q, q, N)


def test_test_points_enumeration():
    """⟨Q1⟩ for Ex. 4.6 has 5 CCQs; a boolean query has one () target
    each."""
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    points = list(small_model_tests(q1))
    assert len(points) == 5
    assert all(target == () for _, target in points)


def test_test_points_with_free_variables():
    q = parse_cq("Q(x) :- R(x, y)")
    points = list(small_model_tests(q))
    # ⟨Q⟩ = {R(x,y)} (only y existential): 2 variables, arity 1 → 2 pts.
    assert len(points) == 2


def test_example_4_6_tropical():
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")
    assert small_model_contained(q1, q2, TPLUS)
    assert small_model_contained(q2, q1, TPLUS)  # the paper shows =T+


def test_example_5_4_ucq():
    q1 = parse_ucq(["Q() :- R(v), S(v)"])
    q2 = parse_ucq(["Q() :- R(v), R(v)", "Q() :- S(v), S(v)"])
    assert small_model_contained(q1, q2, TPLUS)
    assert not small_model_contained(q2, q1, TPLUS)


def test_refutes_relation_mismatch():
    q1 = parse_cq("Q() :- R(u, u)")
    q2 = parse_cq("Q() :- S(u)")
    assert not small_model_contained(q1, q2, TPLUS)


def test_agrees_with_boolean_homomorphism():
    """For B (⊕-idempotent with a decidable poly order) the small model
    must agree with the Chandra–Merlin criterion."""
    from repro.homomorphisms import has_homomorphism
    rng = random.Random(31)
    for _ in range(15):
        q1 = random_cq(rng, max_atoms=2, max_vars=2)
        q2 = random_cq(rng, max_atoms=2, max_vars=2)
        assert small_model_contained(q1, q2, B) == has_homomorphism(q2, q1)


@pytest.mark.parametrize("semiring", [TPLUS, TMINUS], ids=lambda s: s.name)
def test_small_model_never_refuted_by_oracle(semiring):
    rng = random.Random(17)
    for _ in range(12):
        q1 = random_cq(rng, max_atoms=2, max_vars=2)
        q2 = random_cq(rng, max_atoms=2, max_vars=2)
        contained = small_model_contained(q1, q2, semiring)
        witness = find_counterexample(q1, q2, semiring,
                                      rng=random.Random(3), budget=600,
                                      random_rounds=8)
        if contained:
            assert witness is None, (q1, q2, witness)
        else:
            assert witness is not None, (q1, q2)
