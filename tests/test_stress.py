"""Medium-size stress checks: the engines stay correct and tractable
beyond toy sizes (chains, cliques, five-variable descriptions)."""

from __future__ import annotations

import pytest

from repro.core import decide_cq_containment, decide_ucq_containment
from repro.homomorphisms import HomKind, has_homomorphism
from repro.queries import CQ, UCQ, Atom, Var, complete_description
from repro.semirings import B, LIN, NX, WHY


def chain(length: int, fan: int = 1) -> CQ:
    atoms = []
    for i in range(length):
        for _ in range(fan):
            atoms.append(Atom("E", (Var(f"v{i}"), Var(f"v{i + 1}"))))
    return CQ((), atoms)


def clique(size: int) -> CQ:
    atoms = [Atom("E", (Var(f"v{i}"), Var(f"v{j}")))
             for i in range(size) for j in range(size) if i != j]
    return CQ((), atoms)


def test_long_chain_into_clique():
    assert has_homomorphism(chain(8), clique(3), HomKind.PLAIN)
    assert not has_homomorphism(clique(3), chain(8), HomKind.PLAIN)


def test_chain_containments_by_length():
    """Longer chains are contained in shorter ones under B (fold), not
    conversely (no hom from longer to shorter without loops)."""
    shorter, longer = chain(3), chain(5)
    assert decide_cq_containment(longer, shorter, B).result is True
    assert decide_cq_containment(shorter, longer, B).result is False


def test_five_variable_description():
    query = chain(4)  # 5 variables → Bell(5) = 52 CCQs
    description = complete_description(query)
    assert len(description) == 52
    assert all(ccq.is_complete() for ccq in description)


def test_wide_union_decisions():
    members = [chain(length) for length in range(1, 5)]
    q1 = UCQ(tuple(members))
    q2 = UCQ((chain(1),))
    # every chain folds into E(v0,v1)? no — it maps INTO any chain; the
    # single edge has homs from all chains under B.
    assert decide_ucq_containment(q1, q2, B).result is True
    assert decide_ucq_containment(q2, q1, B).result is True
    # Under N[X] the union sizes differ: no bijective matching.
    assert decide_ucq_containment(q1, q2, NX).result is False


def test_fanned_chain_multiset_reasoning():
    single, fanned = chain(3, fan=1), chain(3, fan=2)
    # Lin: ⊗-idempotent — covering both ways.
    assert decide_cq_containment(single, fanned, LIN).result is True
    assert decide_cq_containment(fanned, single, LIN).result is True
    # Why: surjective works in one direction only.
    assert decide_cq_containment(single, fanned, WHY).result is True
    assert decide_cq_containment(fanned, single, WHY).result is False


def test_clique_description_of_triangle_query():
    triangle = CQ((), (
        Atom("E", (Var("a"), Var("b"))),
        Atom("E", (Var("b"), Var("c"))),
        Atom("E", (Var("c"), Var("a"))),
    ))
    description = complete_description(triangle)
    assert len(description) == 5  # Bell(3)
    # the all-collapsed CCQ is the self-loop used three times
    loops = [ccq for ccq in description
             if len(ccq.existential_vars()) == 1]
    assert len(loops) == 1
    assert len(loops[0].atoms) == 3
