"""The certificate-memoized tropical order layer.

Covers the contract of ``ContainmentEngine.poly_leq`` and its snapshot
behavior: certificates round-trip through snapshot save/load (with
corrupt and stale files rejected wholesale), recall-time revalidation
catches tampered or mis-keyed certificates and recomputes, and the
memoized decisions cross-validate against the bounded grid checker on
randomized pairs.
"""

from __future__ import annotations

import dataclasses
import pickle
import random
from pathlib import Path

import pytest

from repro.api import ContainmentEngine
from repro.polynomials import (MAX_PLUS, MIN_PLUS, Polynomial,
                               TropicalOrderCertificate, canonical_pair,
                               certificate_valid, decide_poly_leq,
                               grid_violation, max_plus_poly_leq,
                               min_plus_poly_leq)
from repro.polynomials.polynomial import Monomial
from repro.semirings import TMINUS, TPLUS, VITERBI
from repro.service import (SNAPSHOT_MAGIC, SnapshotError, load_snapshot,
                           read_snapshot, save_snapshot, write_snapshot)

TROPICAL_REQUESTS = [
    {"semiring": "T+", "q1": "Q() :- R(u, v), R(u, w)",
     "q2": "Q() :- R(u, v), R(u, v)"},
    {"semiring": "T-", "q1": "Q() :- R(u, v)",
     "q2": "Q() :- R(u, v), R(u, v)"},
    {"semiring": "T+", "q1": ["Q() :- R(v), S(v)"],
     "q2": ["Q() :- R(v), R(v)", "Q() :- S(v), S(v)"]},
    {"semiring": "V", "q1": "Q() :- E(x, y), E(y, z)",
     "q2": "Q() :- E(u, v), E(v, u)"},
]


def poly(terms):
    return Polynomial.parse_terms(terms)


def random_poly(rng, variables=("x", "y"), max_terms=3):
    terms = []
    for _ in range(rng.randint(0, max_terms)):
        word = [rng.choice(variables) for _ in range(rng.randint(1, 3))]
        terms.append((Monomial.from_variables(word), 1))
    return Polynomial(terms)


# --- the engine memo ---------------------------------------------------

def test_engine_poly_leq_matches_plain_functions_and_counts_hits():
    engine = ContainmentEngine()
    left = poly([(1, "xx"), (2, "xy"), (1, "yy")])
    right = poly([(1, "xx"), (1, "yy")])
    assert engine.poly_leq(TPLUS, left, right) is True
    assert engine.stats.poly_calls == 1
    # Second ask: a revalidated certificate recall, not an LP.
    assert engine.poly_leq(TPLUS, left, right) is True
    assert engine.stats.poly_calls == 1
    assert engine.stats.poly_hits == 1
    # Viterbi shares the min-plus kind — same key, immediate hit.
    assert engine.poly_leq(VITERBI, left, right) is True
    assert engine.stats.poly_calls == 1
    assert engine.stats.poly_hits == 2
    # Max-plus is a different kind with its own entries.
    assert engine.poly_leq(TMINUS, left, right) == \
        max_plus_poly_leq(left, right)
    assert engine.stats.poly_calls == 2


def test_renamed_pairs_share_one_certificate():
    engine = ContainmentEngine()
    assert engine.poly_leq(TPLUS, poly([(1, "ab")]), poly([(1, "aa")])) \
        == min_plus_poly_leq(poly([(1, "ab")]), poly([(1, "aa")]))
    calls = engine.stats.poly_calls
    # The same pair under fresh variable names is a cache *hit*.
    assert engine.poly_leq(TPLUS, poly([(1, "uz")]), poly([(1, "uu")])) \
        == min_plus_poly_leq(poly([(1, "ab")]), poly([(1, "aa")]))
    assert engine.stats.poly_calls == calls
    assert engine.stats.poly_hits >= 1


def test_non_tropical_semirings_pass_through_uncached():
    from repro.semirings import B

    engine = ContainmentEngine()
    left, right = poly([(1, "x")]), poly([(1, "x"), (1, "y")])
    assert engine.poly_leq(B, left, right) == B.poly_leq(left, right)
    assert engine.stats.poly_calls == 0
    assert engine.cache_info()["poly_entries"] == 0


def test_cache_stats_reports_poly_layer_with_safe_ratios():
    engine = ContainmentEngine()
    report = engine.cache_stats()
    # Zero traffic everywhere: every ratio must be None, never a crash.
    for name, layer in report["layers"].items():
        assert layer["hit_ratio"] is None, name
    assert report["layers"]["poly_orders"]["rejected"] == 0
    engine.decide("Q() :- R(u, v)", "Q() :- R(u, v), R(u, v)", "T+")
    engine.decide("Q() :- R(u, v)", "Q() :- R(u, v), R(u, v)", "T+")
    report = engine.cache_stats()
    layer = report["layers"]["poly_orders"]
    assert layer["calls"] > 0 and layer["entries"] > 0
    assert 0.0 <= layer["hit_ratio"] <= 1.0
    assert report["layers"]["verdicts"]["hits"] == 1
    # Layers the workload never touched still answer None.
    assert report["layers"]["covered"]["hit_ratio"] is None


# --- revalidation ------------------------------------------------------

def test_tampered_certificate_is_rejected_and_recomputed():
    engine = ContainmentEngine()
    left, right = poly([(1, "xy")]), poly([(1, "xx")])
    truth = min_plus_poly_leq(left, right)
    assert engine.poly_leq(TPLUS, left, right) == truth
    ((key, certificate),) = engine.export_caches()["poly_orders"]
    # Flip the claimed answer but keep the certificate's witness data:
    # revalidation must notice the arithmetic no longer proves the claim.
    forged = dataclasses.replace(
        certificate, holds=not certificate.holds,
        witness=None if certificate.holds else certificate.witness,
        witnesses=certificate.witnesses if certificate.holds else None)
    engine.import_caches({"poly_orders": [(key, forged)]})
    assert engine.poly_leq(TPLUS, left, right) == truth
    assert engine.stats.poly_rejected == 1
    assert engine.stats.poly_calls == 2  # recomputed, not trusted
    # The forged entry was evicted and replaced by a valid one.
    ((_, restored),) = engine.export_caches()["poly_orders"]
    assert certificate_valid(restored, MIN_PLUS, *restored.key)


def test_mis_keyed_certificate_is_rejected():
    engine = ContainmentEngine()
    a, b = poly([(1, "x")]), poly([(1, "x"), (1, "y")])
    c, d = poly([(1, "xx")]), poly([(1, "x")])
    assert engine.poly_leq(TPLUS, a, b) == min_plus_poly_leq(a, b)
    entries = engine.export_caches()["poly_orders"]
    ((key, certificate),) = entries
    # Attach that certificate to a *different* pair's key (a stale or
    # corrupted snapshot could do this): the recall must reject it.
    other_key = ("min-plus",) + canonical_pair(c, d)[:2]
    engine.import_caches({"poly_orders": [(other_key, certificate)]})
    assert engine.poly_leq(TPLUS, c, d) == min_plus_poly_leq(c, d)
    assert engine.stats.poly_rejected == 1


def test_certificate_valid_rejects_garbage_values():
    left, right = poly([(1, "x")]), poly([(1, "x"), (1, "y")])
    holds, certificate = decide_poly_leq(MIN_PLUS, left, right)
    assert holds and certificate_valid(certificate, MIN_PLUS, left, right)
    assert not certificate_valid(certificate, MAX_PLUS, left, right)
    assert not certificate_valid(certificate, MIN_PLUS, right, left)
    assert not certificate_valid("not a certificate", MIN_PLUS, left, right)
    assert not certificate_valid(None, MIN_PLUS, left, right)
    # Dropping the dominance witnesses invalidates a True certificate.
    gutted = dataclasses.replace(certificate, witnesses=())
    assert not certificate_valid(gutted, MIN_PLUS, left, right)


def test_false_certificates_carry_a_checkable_violating_point():
    left, right = poly([(1, "x")]), poly([(1, "xx")])
    holds, certificate = decide_poly_leq(MIN_PLUS, left, right)
    assert not holds
    infinite, point = certificate.witness
    assert all(isinstance(value, int) and value >= 0 for value in point)
    # Corrupting the point breaks revalidation.
    zeroed = dataclasses.replace(certificate,
                                 witness=(infinite, (0,) * len(point)))
    assert not certificate_valid(zeroed, MIN_PLUS, left, right)


def test_certificates_round_trip_through_json_and_pickle():
    for order in (MIN_PLUS, MAX_PLUS):
        for pair in ((poly([(1, "xy")]), poly([(1, "xx")])),
                     (poly([(1, "xx"), (1, "yy")]), poly([(1, "xy")]))):
            _, certificate = decide_poly_leq(order, *pair)
            assert TropicalOrderCertificate.from_dict(
                certificate.to_dict()) == certificate
            assert pickle.loads(pickle.dumps(certificate)) == certificate


# --- snapshot round trips ----------------------------------------------

def run_tropical(engine: ContainmentEngine):
    return [doc.to_dict() for doc in engine.decide_many(TROPICAL_REQUESTS)]


def test_certificates_survive_a_snapshot_round_trip(tmp_path):
    path = tmp_path / "tropical.snap"
    warmed = ContainmentEngine()
    baseline = run_tropical(warmed)
    assert warmed.stats.poly_calls > 0
    save_snapshot(warmed, path, include_verdicts=False)

    restored = ContainmentEngine()
    counts = load_snapshot(restored, path)
    assert counts["poly_orders"] == warmed.cache_info()["poly_entries"]
    docs = run_tropical(restored)
    assert docs == baseline
    assert restored.stats.poly_calls == 0, \
        "every tropical order decision must be a certificate recall"
    assert restored.stats.poly_hits > 0
    assert restored.stats.poly_rejected == 0


def test_corrupt_and_stale_snapshots_are_rejected(tmp_path):
    path = tmp_path / "tropical.snap"
    warmed = ContainmentEngine()
    run_tropical(warmed)
    save_snapshot(warmed, path)

    # Truncation: unreadable, nothing half-imported.
    data = path.read_bytes()
    path.write_bytes(data[:len(data) // 2])
    with pytest.raises(SnapshotError):
        read_snapshot(path)

    # A future version: stale, rejected before any entry lands.
    envelope = {"magic": SNAPSHOT_MAGIC, "version": 99,
                "semirings": (), "caches": {"poly_orders": []}}
    path.write_bytes(pickle.dumps(envelope))
    engine = ContainmentEngine()
    with pytest.raises(SnapshotError):
        load_snapshot(engine, path)
    assert engine.cache_info()["poly_entries"] == 0

    # A malformed poly_orders layer: schema validation catches it.
    write_snapshot({"poly_orders": [("not", "a", "pair")]}, path)
    with pytest.raises(SnapshotError):
        read_snapshot(path)


def test_doctored_snapshot_certificates_cannot_change_answers(tmp_path):
    """End to end: forge every certificate in a snapshot file, restore
    it, and check the verdicts still match a cold engine (with the
    rejects visible in the stats)."""
    path = tmp_path / "tropical.snap"
    warmed = ContainmentEngine()
    baseline = run_tropical(warmed)
    state = warmed.export_caches(include_verdicts=False)
    state["poly_orders"] = [
        (key, dataclasses.replace(
            certificate, holds=not certificate.holds))
        for key, certificate in state["poly_orders"]
    ]
    write_snapshot(state, path)

    restored = ContainmentEngine()
    counts = load_snapshot(restored, path)
    assert counts["poly_orders"] > 0
    assert run_tropical(restored) == baseline
    assert restored.stats.poly_rejected > 0


def test_certificates_warm_start_across_processes(tmp_path):
    """A snapshot written by one process must be recalled by another.

    ``Polynomial``/``Monomial`` cache a string-tuple hash, which is
    salted per process — they must rebuild (not restore) it on
    unpickling, or every certificate key would silently miss in the
    restoring process.  Pin it with explicitly different hash seeds.
    """
    import json
    import os
    import subprocess
    import sys

    snapshot = tmp_path / "cross.snap"
    requests = tmp_path / "requests.jsonl"
    requests.write_text(
        "".join(json.dumps(request) + "\n" for request in TROPICAL_REQUESTS),
        encoding="utf-8")
    outputs = []
    for run, seed in (("cold", "1"), ("warm", "2")):
        output = tmp_path / f"{run}.jsonl"
        stderr = subprocess.run(
            [sys.executable, "-m", "repro", "batch",
             "--snapshot", str(snapshot), "--input", str(requests),
             "--output", str(output), "--stats"],
            env={**os.environ, "PYTHONHASHSEED": seed,
                 "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
            check=True, capture_output=True, text=True).stderr
        outputs.append(output.read_text(encoding="utf-8"))
        stats = json.loads(stderr.strip().splitlines()[-1])
        if run == "warm":
            assert stats["poly_calls"] == 0, stats
            assert stats["poly_hits"] > 0, stats
    assert outputs[0] == outputs[1]


# --- randomized cross-validation --------------------------------------

def test_memoized_decisions_cross_validate_against_the_grid():
    rng = random.Random(20260727)
    engine = ContainmentEngine()
    for _ in range(40):
        p, q = random_poly(rng), random_poly(rng)
        for semiring, order, plain in (
                (TPLUS, MIN_PLUS, min_plus_poly_leq),
                (TMINUS, MAX_PLUS, max_plus_poly_leq)):
            memoized = engine.poly_leq(semiring, p, q)
            assert memoized == plain(p, q), (order, p, q)
            if memoized:
                assert grid_violation(p, q, semiring, bound=3) is None, \
                    (order, p, q)
            # Asking again recalls the certificate with the same answer.
            assert engine.poly_leq(semiring, p, q) == memoized
    assert engine.stats.poly_hits >= 80
    assert engine.stats.poly_rejected == 0


# --- canonical pair tie-breaking (ROADMAP item 5, PR 5) ----------------

def _renamed_poly(poly: Polynomial, mapping: dict) -> Polynomial:
    return Polynomial(
        (Monomial(tuple((mapping.get(var, var), exp)
                        for var, exp in mono.powers)), coeff)
        for mono, coeff in poly.items()
    )


def test_canonical_pair_collapses_renamings_on_signature_ties():
    """Variables b, c, d of a²b + acd share the occurrence signature
    but only c↔d is a pair automorphism — the old name tiebreak keyed
    renamings of this pair apart; refinement + individualization must
    collapse them onto one key."""
    p1 = Polynomial([
        (Monomial({"a": 2, "b": 1}), 1),
        (Monomial({"a": 1, "c": 1, "d": 1}), 1),
    ])
    p2 = Polynomial([(Monomial({"a": 1}), 1)])
    canonical = canonical_pair(p1, p2)[:2]
    renaming = {"b": "z", "c": "b"}  # permutes the tied names' order
    renamed = canonical_pair(_renamed_poly(p1, renaming),
                             _renamed_poly(p2, renaming))[:2]
    assert canonical == renamed


def test_canonical_pair_random_renaming_invariance():
    rng = random.Random(5050)
    for _ in range(30):
        p, q = random_poly(rng), random_poly(rng)
        variables = sorted(p.variables() | q.variables())
        shuffled = list(variables)
        rng.shuffle(shuffled)
        mapping = dict(zip(variables, (f"w{i}" for i in range(len(shuffled)))))
        mapping = {var: mapping[target]
                   for var, target in zip(variables, shuffled)}
        base = canonical_pair(p, q)[:2]
        renamed = canonical_pair(_renamed_poly(p, mapping),
                                 _renamed_poly(q, mapping))[:2]
        assert base == renamed, (p, q, mapping)


def test_canonical_pair_renaming_is_a_bijection():
    rng = random.Random(6060)
    for _ in range(20):
        p, q = random_poly(rng), random_poly(rng)
        c1, c2, renaming = canonical_pair(p, q)
        assert len(set(renaming.values())) == len(renaming)
        assert _renamed_poly(p, renaming) == c1
        assert _renamed_poly(q, renaming) == c2
