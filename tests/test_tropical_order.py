"""The tropical polynomial orders (Prop. 4.19) and their LP decision.

The LP procedure is cross-validated against a bounded grid checker on
random polynomials: whenever the grid finds a violating valuation the
LP must say "not ≼", and whenever the LP says "≼" the grid must be
silent.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polynomials import (Polynomial, grid_violation,
                               max_plus_poly_leq, min_plus_poly_leq)
from repro.polynomials.polynomial import Monomial
from repro.semirings import TMINUS, TPLUS


def poly(terms):
    return Polynomial.parse_terms(terms)


# --- paper example (Ex. 4.6 continued) --------------------------------

def test_example_4_6_equality_in_tplus():
    """x1² + 2x1x2 + x2² =T+ x1² + x2²."""
    left = poly([(1, "xx"), (2, "xy"), (1, "yy")])
    right = poly([(1, "xx"), (1, "yy")])
    assert min_plus_poly_leq(left, right)
    assert min_plus_poly_leq(right, left)


def test_example_4_6_fails_in_tminus():
    """Under max-plus the mixed term x1x2 can exceed max(x1², x2²)…
    never: 2·max ≥ x+y always.  But the reverse strictness differs:
    x² + y² ≼T− x² + xy + y² and also conversely (xy ≤ max(x²,y²));
    a genuinely failing pair is x² vs xy."""
    assert not max_plus_poly_leq(poly([(1, "xx")]), poly([(1, "xy")]))
    assert not min_plus_poly_leq(poly([(1, "xy")]), poly([(1, "xx")]))


# --- basic dominance facts --------------------------------------------

def test_min_plus_zero_polynomial():
    zero = Polynomial.zero()
    x = poly([(1, "x")])
    # 0K = ∞ is the bottom of ≼T+: 0 ≼ anything.
    assert min_plus_poly_leq(zero, x)
    # x ≼ 0 would need ∞ ≤ x numerically: fails.
    assert not min_plus_poly_leq(x, zero)
    assert min_plus_poly_leq(zero, zero)


def test_max_plus_zero_polynomial():
    zero = Polynomial.zero()
    x = poly([(1, "x")])
    assert max_plus_poly_leq(zero, x)
    assert not max_plus_poly_leq(x, zero)


def test_min_plus_sum_below_parts():
    """min(x, y) ≤ x pointwise: x + y ≼T+ is *larger* than x… careful:
    ≼T+ reversed — adding monomials makes a min-plus value smaller,
    hence larger in ≼T+."""
    x = poly([(1, "x")])
    both = poly([(1, "x"), (1, "y")])
    assert min_plus_poly_leq(x, both)
    assert not min_plus_poly_leq(both, x)


def test_max_plus_sum_above_parts():
    x = poly([(1, "x")])
    both = poly([(1, "x"), (1, "y")])
    assert max_plus_poly_leq(x, both)
    assert not max_plus_poly_leq(both, x)


def test_coefficients_are_absorbed():
    """k·M =T± M: tropical addition is idempotent."""
    assert min_plus_poly_leq(poly([(3, "xy")]), poly([(1, "xy")]))
    assert min_plus_poly_leq(poly([(1, "xy")]), poly([(3, "xy")]))
    assert max_plus_poly_leq(poly([(3, "xy")]), poly([(1, "xy")]))


def test_degree_matters_with_infinities():
    """x ≼T+ x²? Eval: x² ≤ x needs x ≤ 0 — fails at x = 1."""
    assert not min_plus_poly_leq(poly([(1, "x")]), poly([(1, "xx")]))
    # but x² ≼T+ x holds: x ≤ 2x over naturals.
    assert min_plus_poly_leq(poly([(1, "xx")]), poly([(1, "x")]))
    # and dually for max-plus.
    assert max_plus_poly_leq(poly([(1, "x")]), poly([(1, "xx")]))
    assert not max_plus_poly_leq(poly([(1, "xx")]), poly([(1, "x")]))


# --- LP vs grid cross-validation --------------------------------------

VARS = ("x", "y")
monomials = st.builds(
    Monomial.from_variables,
    st.lists(st.sampled_from(VARS), min_size=1, max_size=3),
)
tropical_polys = st.builds(
    Polynomial,
    st.lists(st.tuples(monomials, st.just(1)), min_size=0, max_size=3),
)


@given(p=tropical_polys, q=tropical_polys)
@settings(max_examples=80, deadline=None)
def test_min_plus_agrees_with_grid(p, q):
    decided = min_plus_poly_leq(p, q)
    witness = grid_violation(p, q, TPLUS, bound=3)
    if decided:
        assert witness is None, (p, q, witness)


@given(p=tropical_polys, q=tropical_polys)
@settings(max_examples=80, deadline=None)
def test_max_plus_agrees_with_grid(p, q):
    decided = max_plus_poly_leq(p, q)
    witness = grid_violation(p, q, TMINUS, bound=3)
    if decided:
        assert witness is None, (p, q, witness)


def test_grid_violation_finds_witness():
    witness = grid_violation(poly([(1, "x")]), poly([(1, "xx")]), TPLUS)
    assert witness is not None
    # ∞-patterns are part of the grid:
    witness = grid_violation(poly([(1, "x")]), Polynomial.zero(), TPLUS)
    assert witness is not None


def test_semiring_poly_leq_entry_points():
    left = poly([(1, "xx"), (2, "xy"), (1, "yy")])
    right = poly([(1, "xx"), (1, "yy")])
    assert TPLUS.poly_leq(left, right)
    assert TMINUS.poly_leq(right, left)
    # T−: left has the extra xy form; max(x², y²) dominates xy, so both
    # directions hold as well.
    assert TMINUS.poly_leq(left, right)
