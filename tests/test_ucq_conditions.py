"""The UCQ-level syntactic conditions of Sec. 5 (Table 1, right column)."""

from __future__ import annotations

import pytest

from repro.homomorphisms import (HomKind, bi_count_infty, bi_count_k,
                                 covering_2, covering_union,
                                 local_condition, sur_infty)
from repro.queries import UCQ, parse_cq, parse_ucq


# --- local conditions (Prop. 5.1 style) ----------------------------------

def test_local_plain_hom():
    q1 = parse_ucq(["Q() :- R(x, x)", "Q() :- S(y)"])
    q2 = parse_ucq(["Q() :- R(u, v)", "Q() :- S(w)"])
    assert local_condition(q2, q1, HomKind.PLAIN)
    assert not local_condition(q1, q2, HomKind.PLAIN)


def test_local_accepts_cq_inputs():
    q1 = parse_cq("Q() :- R(x, x)")
    q2 = parse_cq("Q() :- R(u, v)")
    assert local_condition(q2, q1, HomKind.PLAIN)


def test_local_empty_target_trivial():
    q2 = parse_ucq(["Q() :- R(u, v)"])
    assert local_condition(q2, UCQ(()), HomKind.PLAIN)
    assert not local_condition(UCQ(()), q2, HomKind.PLAIN)


# --- union covering ⇉1 (Ex. 5.20) ----------------------------------------

def test_example_5_20_union_covering():
    q1 = parse_ucq(["Q() :- R(v), S(v)"])
    q2 = parse_ucq(["Q() :- R(v)", "Q() :- S(v)"])
    assert covering_union(q2, q1)
    # no single member covers Q11:
    from repro.homomorphisms import covers
    q11 = parse_cq("Q() :- R(v), S(v)")
    assert not covers(parse_cq("Q() :- R(v)"), q11)
    assert not covers(parse_cq("Q() :- S(v)"), q11)


def test_union_covering_fails_without_relation():
    q1 = parse_ucq(["Q() :- R(v), S(v)"])
    q2 = parse_ucq(["Q() :- R(v)"])
    assert not covering_union(q2, q1)


# --- ⇉2 (Thm. 5.24 k = 2) -------------------------------------------------

def test_covering_2_requires_duplicated_support():
    """Two copies of the same class on the left need two sources."""
    q1 = parse_ucq(["Q() :- S(v)", "Q() :- S(v), S(v)"])  # both ≡ S(v) class
    q2_single = parse_ucq(["Q() :- S(v)"])
    q2_double = parse_ucq(["Q() :- S(v)", "Q() :- S(v)"])
    assert not covering_2(q2_single, q1)
    assert covering_2(q2_double, q1)


def test_covering_2_multiplicity_one_exempt():
    """S(v),S(v) ⊆ S(v) over ⊗-idempotent offset-2 semirings: the
    set-reduced class has multiplicity 1, so one source suffices."""
    q1 = parse_ucq(["Q() :- S(v), S(v)"])
    q2 = parse_ucq(["Q() :- S(v)"])
    assert covering_2(q2, q1)


def test_covering_2_automorphism_exempt():
    """A CCQ with a nontrivial automorphism needs only one source: each
    source already contributes |Aut| = 2 equal summands, which offset 2
    saturates.  (The *plain* CQ version would fail: its complete
    description contains the rigid collapse R(u,u),R(u,u), whose
    duplication genuinely needs two sources.)"""
    swap_ccq = "Q() :- R(u, v), R(v, u), u != v"
    q1 = parse_ucq([swap_ccq, swap_ccq])
    q2 = parse_ucq([swap_ccq])
    assert covering_2(q2, q1)
    plain = "Q() :- R(u, v), R(v, u)"
    assert not covering_2(parse_ucq([plain]), parse_ucq([plain, plain]))


def test_covering_2_implies_covering_1():
    q1 = parse_ucq(["Q() :- R(v), S(v)"])
    q2 = parse_ucq(["Q() :- R(v)"])
    assert not covering_2(q2, q1)


# --- →֒∞ (Def. 5.8, Ex. 5.7) ----------------------------------------------

EX57_Q1 = ["Q() :- R(u, v), R(u, u)", "Q() :- R(u, v), R(v, v)"]
EX57_Q2 = ["Q() :- R(u, v), R(w, w)", "Q() :- R(u, u), R(u, u)"]


def test_example_5_7_bi_infty():
    q1, q2 = parse_ucq(EX57_Q1), parse_ucq(EX57_Q2)
    assert bi_count_infty(q2, q1)
    # adding one more copy of the loop query to Q1 breaks the counting
    q1_plus = q1.with_member(parse_cq("Q() :- R(u, u), R(u, u)"))
    assert not bi_count_infty(q2, q1_plus)


def test_bi_infty_counts_multiplicities():
    q = parse_cq("Q() :- R(u, u)")
    assert bi_count_infty(UCQ((q, q)), UCQ((q, q)))
    assert not bi_count_infty(UCQ((q,)), UCQ((q, q)))
    assert bi_count_infty(UCQ((q, q)), UCQ((q,)))


# --- →֒k (Thm. 5.13, reconstruction) ---------------------------------------

def test_example_5_7_continued_offset_2():
    """The third copy of Q22 is redundant at offset 2 but not at 3/∞."""
    q1 = parse_ucq(EX57_Q1).with_member(parse_cq("Q() :- R(u, u), R(u, u)"))
    q2 = parse_ucq(EX57_Q2)
    assert bi_count_k(q2, q1, 2)
    assert not bi_count_k(q2, q1, 3)
    assert not bi_count_k(q2, q1, float("inf"))


def test_bi_count_k_automorphism_discount():
    """A class with |Aut| = 2 saturates offset 2 with a single copy."""
    swap = parse_cq("Q() :- R(u, v), R(v, u), u != v")
    q1 = UCQ((swap, swap))
    q2 = UCQ((swap,))
    assert bi_count_k(q2, q1, 2)      # ⌈2/2⌉ = 1 copy suffices
    assert not bi_count_k(q2, q1, 3)  # ⌈3/2⌉ = 2 copies needed
    rigid = parse_cq("Q() :- R(u, u)")
    assert not bi_count_k(UCQ((rigid,)), UCQ((rigid, rigid)), 2)


def test_bi_count_k_one_matches_local_bijective():
    q1 = parse_ucq(EX57_Q1)
    q2 = parse_ucq(EX57_Q2)
    assert bi_count_k(q2, q1, 1) == local_condition(q2, q1, HomKind.BIJECTIVE)


def test_bi_count_k_validates_input():
    q = parse_ucq(["Q() :- R(u, u)"])
    with pytest.raises(ValueError):
        bi_count_k(q, q, 0)


# --- ։∞ (Def. 5.14, Thm. 5.17) ---------------------------------------------

def test_sur_infty_needs_unique_assignment():
    """Two left CCQs sharing one right CCQ fail the matching."""
    q = parse_cq("Q() :- R(u, u)")
    assert sur_infty(UCQ((q, q)), UCQ((q, q)))
    assert not sur_infty(UCQ((q,)), UCQ((q, q)))


def test_sur_infty_example():
    q1 = parse_ucq(["Q() :- R(u, v)"])
    q2 = parse_ucq(["Q() :- R(u, v), R(u, w)"])
    # ⟨Q2⟩ contains the collapse R(u,v),R(u,v)… whose surjective homs
    # reach ⟨Q1⟩'s CCQs; check it simply runs and is sound vs. Hall.
    assert sur_infty(q2, q1)


def test_sur_infty_empty_target():
    q2 = parse_ucq(["Q() :- R(u, v)"])
    assert sur_infty(q2, UCQ(()))
