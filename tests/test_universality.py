"""Prop. 3.2: ``N[X]`` is universal for all positive semirings.

``Evalν`` (implemented by ``Polynomial.eval_in``) must be a semiring
morphism for every valuation ``ν : X → K`` — it preserves 0, 1, ⊕ and
⊗ — and it must be monotone w.r.t. the natural order of ``N[X]``
(positivity of ``K``).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polynomials import Monomial, Polynomial
from tests.helpers import semiring_params

VARS = ("x", "y")

monomials = st.builds(
    Monomial.from_variables,
    st.lists(st.sampled_from(VARS), min_size=0, max_size=3),
)
polynomials = st.builds(
    Polynomial,
    st.lists(st.tuples(monomials, st.integers(min_value=1, max_value=2)),
             min_size=0, max_size=3),
)


def _valuation(semiring, seed: int) -> dict:
    rng = random.Random(seed)
    return {var: semiring.sample(rng) for var in VARS}


@pytest.mark.parametrize("semiring", semiring_params())
@given(p=polynomials, q=polynomials, seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_eval_preserves_operations(semiring, p, q, seed):
    valuation = _valuation(semiring, seed)
    left = (p + q).eval_in(semiring, valuation)
    right = semiring.add(p.eval_in(semiring, valuation),
                         q.eval_in(semiring, valuation))
    assert semiring.eq(left, right)
    left = (p * q).eval_in(semiring, valuation)
    right = semiring.mul(p.eval_in(semiring, valuation),
                         q.eval_in(semiring, valuation))
    assert semiring.eq(left, right)


@pytest.mark.parametrize("semiring", semiring_params())
def test_eval_preserves_identities(semiring):
    valuation = _valuation(semiring, 3)
    assert semiring.eq(Polynomial.zero().eval_in(semiring, valuation),
                       semiring.zero)
    assert semiring.eq(Polynomial.one().eval_in(semiring, valuation),
                       semiring.one)


@pytest.mark.parametrize("semiring", semiring_params())
@given(p=polynomials, q=polynomials, seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_eval_monotone_under_natural_order(semiring, p, q, seed):
    """P ≼N[X] Q implies Evalν(P) ≼K Evalν(Q): positivity in action."""
    valuation = _valuation(semiring, seed)
    total = p + q  # p ≼ total by construction
    assert semiring.leq(p.eval_in(semiring, valuation),
                        total.eval_in(semiring, valuation))


def test_eval_variable_is_valuation():
    from repro.semirings import N
    assert Polynomial.variable("x").eval_in(N, {"x": 9}) == 9
    p = Polynomial.parse_terms([(2, "xy"), (1, "xx")])
    assert p.eval_in(N, {"x": 2, "y": 3}) == 2 * 2 * 3 + 2 * 2
