"""Serialization round-trips for verdict documents.

Acceptance: ``VerdictDocument.from_dict(doc.to_dict()) == doc`` for
every verdict the Table-1 test matrix produces, and every document
survives an actual JSON encode/decode.  The shape-specific tests pin
each verdict variety: decided with a homomorphism certificate, refuted,
bounds-only undecided, and decided via a named condition certificate.
"""

from __future__ import annotations

import json

import pytest

from repro.api import ContainmentEngine, VerdictDocument
from repro.queries import UCQ
from repro.semirings import ALL_SEMIRINGS

# The Ex. 4.6 pair plus refutation/identity pairs — the CQ matrix.
CQ_PAIRS = [
    ("Q() :- R(u, v), R(u, w)", "Q() :- R(u, v), R(u, v)"),
    ("Q() :- R(u, v), R(u, v)", "Q() :- R(u, v), R(u, w)"),
    ("Q() :- R(u, v)", "Q() :- R(u, v), R(u, v)"),
    ("Q() :- R(u, v), S(u)", "Q() :- R(u, v)"),
    ("Q() :- R(u, u)", "Q() :- R(u, v)"),
    ("Q() :- S(x)", "Q() :- R(x, y)"),          # no homomorphism at all
]

# Sec. 5 UCQ pairs (Ex. 5.4 / Ex. 5.20).
UCQ_PAIRS = [
    (["Q() :- R(v), S(v)"], ["Q() :- R(v), R(v)", "Q() :- S(v), S(v)"]),
    (["Q() :- R(v), S(v)"], ["Q() :- R(v)", "Q() :- S(v)"]),
]


def _round_trip(document: VerdictDocument) -> None:
    data = document.to_dict()
    assert VerdictDocument.from_dict(data) == document
    rehydrated = VerdictDocument.from_dict(json.loads(json.dumps(data)))
    assert rehydrated == document


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS,
                         ids=[s.name for s in ALL_SEMIRINGS])
def test_table1_cq_matrix_round_trips(semiring):
    engine = ContainmentEngine()
    for q1, q2 in CQ_PAIRS:
        _round_trip(engine.decide(q1, q2, semiring))


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS,
                         ids=[s.name for s in ALL_SEMIRINGS])
def test_table1_ucq_matrix_round_trips(semiring):
    engine = ContainmentEngine()
    for q1, q2 in UCQ_PAIRS:
        _round_trip(engine.decide(q1, q2, semiring))


def test_decided_true_with_homomorphism_certificate():
    engine = ContainmentEngine()
    document = engine.decide("Q() :- R(u, v), R(u, w)",
                             "Q() :- R(u, v), R(u, v)", "B")
    assert document.result is True and document.decided
    assert document.answer == "CONTAINED"
    assert document.certificate["kind"] == "homomorphism"
    mapping = document.certificate["mapping"]
    assert set(mapping) == {"u", "v"}
    assert all("var" in image or "const" in image
               for image in mapping.values())
    _round_trip(document)


def test_decided_false_without_certificate():
    engine = ContainmentEngine()
    document = engine.decide("Q() :- S(x)", "Q() :- R(x, y)", "B")
    assert document.result is False
    assert document.answer == "NOT CONTAINED"
    assert document.certificate is None
    _round_trip(document)


def test_bounds_only_undecided_document():
    engine = ContainmentEngine()
    document = engine.decide("Q() :- R(u, v), R(u, w)",
                             "Q() :- R(u, v), R(u, v)", "N")
    assert document.result is None and not document.decided
    assert document.answer == "UNDECIDED"
    assert document.method == "bounds-only"
    assert document.necessary is True and document.sufficient is False
    assert "open" in document.explanation
    _round_trip(document)


def test_condition_certificates_round_trip():
    engine = ContainmentEngine()
    # Sufficient condition over bag semantics (duplicate-branch padding).
    safe = engine.decide("Q(x) :- R(x, y)",
                         "Q(x) :- R(x, y), R(x, y)", "N")
    assert safe.result is True
    assert safe.method == "sufficient-condition"
    assert safe.certificate["kind"] == "condition"
    _round_trip(safe)
    # Necessary condition failing over bag semantics (dropped filter).
    wrong = engine.decide("Q(x) :- R(x, y), S(x)", "Q(x) :- R(x, y)", "N")
    assert wrong.result is False
    assert wrong.method == "necessary-condition"
    assert wrong.certificate["kind"] == "condition"
    _round_trip(wrong)


def test_empty_union_document():
    engine = ContainmentEngine()
    document = engine.decide(UCQ(()), ["Q() :- R(x)"], "B")
    assert document.result is True
    assert document.method == "empty-union"
    _round_trip(document)


def test_unwrap_parity_with_core_verdict():
    from repro import B, decide_cq_containment, parse_cq

    engine = ContainmentEngine()
    q1, q2 = "Q() :- R(u, v), R(u, w)", "Q() :- R(u, v), R(u, v)"
    document = engine.decide(q1, q2, B)
    verdict = decide_cq_containment(parse_cq(q1), parse_cq(q2), B)
    assert document.result is verdict.result
    assert document.method == verdict.method
    assert document.explanation == verdict.explanation
